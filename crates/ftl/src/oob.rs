//! Simulated out-of-band (OOB) metadata — the persistent side of the FTL.
//!
//! Real flash pages carry a spare area the FTL uses to stamp each program
//! with its logical page number and a monotonically increasing sequence
//! number, and real controllers keep per-block markers (bad, erase count)
//! plus a small journal for multi-step operations. This module simulates
//! exactly that surface: everything in an [`OobStore`] survives a power
//! loss, while the FTL's in-DRAM structures (page map, block table,
//! allocator, refresh queue) do not and are rebuilt from here by the
//! recovery scan.
//!
//! The IDA-specific hazard lives here too: a voltage adjustment changes a
//! wordline's coding in place, so the adjustment is journaled as an
//! *intent* (the planned keep-masks), then each wordline records a
//! `merged` mask when its pulse lands and a `committed` flag when its new
//! coding becomes authoritative. A crash between the two is detected on
//! recovery and rolled forward, which is what makes the merge atomic per
//! wordline.

use ida_flash::addr::{BlockAddr, PageAddr};
use ida_flash::geometry::Geometry;

/// What the spare area of one physical page records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageRecord {
    /// Never programmed since the last erase.
    Erased,
    /// Programmed with host/relocated data.
    Data {
        /// Logical page stamped at program time.
        lpn: u64,
        /// Global program sequence number (higher wins at rebuild).
        seq: u64,
    },
    /// The program attempt failed; the page holds nothing usable.
    Failed,
}

impl ida_snap::Snap for PageRecord {
    fn encode(&self, w: &mut ida_snap::Writer) {
        match self {
            PageRecord::Erased => 0u8.encode(w),
            PageRecord::Data { lpn, seq } => {
                1u8.encode(w);
                lpn.encode(w);
                seq.encode(w);
            }
            PageRecord::Failed => 2u8.encode(w),
        }
    }
    fn decode(r: &mut ida_snap::Reader<'_>) -> Result<Self, ida_snap::SnapError> {
        match u8::decode(r)? {
            0 => Ok(PageRecord::Erased),
            1 => Ok(PageRecord::Data {
                lpn: u64::decode(r)?,
                seq: u64::decode(r)?,
            }),
            2 => Ok(PageRecord::Failed),
            tag => Err(ida_snap::SnapError::new(format!(
                "bad PageRecord tag {tag}"
            ))),
        }
    }
}

/// Persistent per-block metadata.
#[derive(Debug, Clone, Default)]
struct BlockOob {
    bad: bool,
    spare: bool,
    erase_count: u32,
    /// Per-wordline merge-pulse record (the keep-mask the pulse applied).
    merged: Vec<u8>,
    /// Per-wordline commit flag: the merged coding is authoritative.
    committed: Vec<bool>,
    /// Open refresh-adjustment intent: planned `(wordline, keep_mask)`
    /// pairs, journaled before the first pulse and cleared after verify.
    intent: Option<Vec<(u32, u8)>>,
}

/// The simulated OOB store for a whole device.
#[derive(Debug, Clone)]
pub struct OobStore {
    geometry: Geometry,
    pages: Vec<PageRecord>,
    blocks: Vec<BlockOob>,
    next_seq: u64,
}

ida_snap::snap_struct!(BlockOob {
    bad,
    spare,
    erase_count,
    merged,
    committed,
    intent,
});

ida_snap::snap_struct!(OobStore {
    geometry,
    pages,
    blocks,
    next_seq,
});

impl OobStore {
    /// A fresh store: every page erased, every block clean.
    pub fn new(geometry: Geometry) -> Self {
        let wl = geometry.wordlines_per_block as usize;
        OobStore {
            geometry,
            pages: vec![PageRecord::Erased; geometry.total_pages() as usize],
            blocks: (0..geometry.total_blocks())
                .map(|_| BlockOob {
                    merged: vec![0; wl],
                    committed: vec![false; wl],
                    ..BlockOob::default()
                })
                .collect(),
            next_seq: 0,
        }
    }

    fn block(&self, b: BlockAddr) -> &BlockOob {
        &self.blocks[b.index() as usize]
    }

    fn block_mut(&mut self, b: BlockAddr) -> &mut BlockOob {
        &mut self.blocks[b.index() as usize]
    }

    /// The record in `page`'s spare area.
    pub fn page(&self, page: PageAddr) -> PageRecord {
        self.pages[page.index() as usize]
    }

    /// Stamp a successful program of `lpn` into `page`; returns the
    /// sequence number assigned.
    pub fn record_program(&mut self, page: PageAddr, lpn: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pages[page.index() as usize] = PageRecord::Data { lpn, seq };
        seq
    }

    /// Mark `page` as a failed program attempt.
    pub fn record_failed(&mut self, page: PageAddr) {
        self.pages[page.index() as usize] = PageRecord::Failed;
    }

    /// Pages of `block` programmed (data or failed) since its last erase.
    /// Programs are sequential, so this equals the block's write pointer.
    pub fn programmed_count(&self, b: BlockAddr) -> u32 {
        let first = b.first_page(&self.geometry).index() as usize;
        let n = self.geometry.pages_per_block() as usize;
        self.pages[first..first + n]
            .iter()
            .filter(|r| !matches!(r, PageRecord::Erased))
            .count() as u32
    }

    /// Failed-program marks in `block` since its last erase.
    pub fn failed_count(&self, b: BlockAddr) -> u32 {
        let first = b.first_page(&self.geometry).index() as usize;
        let n = self.geometry.pages_per_block() as usize;
        self.pages[first..first + n]
            .iter()
            .filter(|r| matches!(r, PageRecord::Failed))
            .count() as u32
    }

    /// A successful erase of `block`: clears every page record, the
    /// wordline merge state and any open intent, and bumps the persistent
    /// erase count.
    pub fn record_erase(&mut self, b: BlockAddr) {
        let first = b.first_page(&self.geometry).index() as usize;
        let n = self.geometry.pages_per_block() as usize;
        self.pages[first..first + n].fill(PageRecord::Erased);
        let oob = self.block_mut(b);
        oob.erase_count += 1;
        oob.merged.fill(0);
        oob.committed.fill(false);
        oob.intent = None;
    }

    /// Persistent erase count of `block`.
    pub fn erase_count(&self, b: BlockAddr) -> u32 {
        self.block(b).erase_count
    }

    /// Retire `block` to the grown-bad list.
    pub fn mark_bad(&mut self, b: BlockAddr) {
        self.block_mut(b).bad = true;
    }

    /// Whether `block` is on the grown-bad list.
    pub fn is_bad(&self, b: BlockAddr) -> bool {
        self.block(b).bad
    }

    /// Number of grown-bad blocks.
    pub fn bad_count(&self) -> u32 {
        self.blocks.iter().filter(|o| o.bad).count() as u32
    }

    /// Flag `block` as belonging to the reserved spare pool.
    pub fn set_spare(&mut self, b: BlockAddr, spare: bool) {
        self.block_mut(b).spare = spare;
    }

    /// Whether `block` sits in the reserved spare pool.
    pub fn is_spare(&self, b: BlockAddr) -> bool {
        self.block(b).spare
    }

    /// Journal a refresh-adjustment intent for `block`: the planned
    /// `(wordline, keep_mask)` pairs.
    pub fn set_intent(&mut self, b: BlockAddr, masks: &[(u32, u8)]) {
        self.block_mut(b).intent = Some(masks.to_vec());
    }

    /// The open intent on `block`, if any.
    pub fn intent(&self, b: BlockAddr) -> Option<&[(u32, u8)]> {
        self.block(b).intent.as_deref()
    }

    /// Close the intent on `block` (adjustment fully verified).
    pub fn clear_intent(&mut self, b: BlockAddr) {
        self.block_mut(b).intent = None;
    }

    /// Record that wordline `wl` of `block` received its merge pulse with
    /// `mask` as the keep-mask.
    pub fn record_merge(&mut self, b: BlockAddr, wl: u32, mask: u8) {
        self.block_mut(b).merged[wl as usize] = mask;
    }

    /// Commit wordline `wl` of `block`: its merged coding is now
    /// authoritative for reads.
    pub fn commit_merge(&mut self, b: BlockAddr, wl: u32) {
        self.block_mut(b).committed[wl as usize] = true;
    }

    /// The merge-pulse mask recorded for wordline `wl` (0 = no pulse).
    pub fn merged_mask(&self, b: BlockAddr, wl: u32) -> u8 {
        self.block(b).merged[wl as usize]
    }

    /// Whether wordline `wl`'s merge is committed.
    pub fn is_committed(&self, b: BlockAddr, wl: u32) -> bool {
        self.block(b).committed[wl as usize]
    }

    /// Per-wordline keep-masks of `block` counting only *committed*
    /// merges — the authoritative coding state a recovery scan trusts.
    pub fn committed_masks(&self, b: BlockAddr) -> Vec<u8> {
        let oob = self.block(b);
        oob.merged
            .iter()
            .zip(&oob.committed)
            .map(|(&m, &c)| if c { m } else { 0 })
            .collect()
    }

    /// Every data record in the store as `(page, lpn, seq)`, in physical
    /// page order. The recovery scan sorts these by `seq` to rebuild the
    /// mapping table.
    pub fn data_records(&self) -> impl Iterator<Item = (PageAddr, u64, u64)> + '_ {
        self.pages.iter().enumerate().filter_map(|(i, r)| match r {
            PageRecord::Data { lpn, seq } => Some((PageAddr(i as u64), *lpn, *seq)),
            _ => None,
        })
    }

    /// Blocks with an open refresh-adjustment intent.
    pub fn open_intents(&self) -> Vec<BlockAddr> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, o)| o.intent.is_some())
            .map(|(i, _)| BlockAddr(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> OobStore {
        OobStore::new(Geometry::tiny())
    }

    #[test]
    fn program_records_are_sequenced_and_erase_clears_them() {
        let mut o = store();
        let b = BlockAddr(3);
        let g = Geometry::tiny();
        let s0 = o.record_program(b.page(&g, 0), 40);
        let s1 = o.record_program(b.page(&g, 1), 41);
        assert!(s1 > s0);
        o.record_failed(b.page(&g, 2));
        assert_eq!(o.programmed_count(b), 3);
        assert_eq!(o.failed_count(b), 1);
        assert_eq!(o.page(b.page(&g, 0)), PageRecord::Data { lpn: 40, seq: s0 });
        o.record_erase(b);
        assert_eq!(o.programmed_count(b), 0);
        assert_eq!(o.erase_count(b), 1);
        assert_eq!(o.page(b.page(&g, 0)), PageRecord::Erased);
    }

    #[test]
    fn intent_and_merge_lifecycle() {
        let mut o = store();
        let b = BlockAddr(5);
        o.set_intent(b, &[(0, 0b011), (2, 0b101)]);
        assert_eq!(o.open_intents(), vec![b]);
        o.record_merge(b, 0, 0b011);
        assert_eq!(o.merged_mask(b, 0), 0b011);
        assert!(!o.is_committed(b, 0));
        assert_eq!(
            o.committed_masks(b)[0],
            0,
            "uncommitted merge is not authoritative"
        );
        o.commit_merge(b, 0);
        assert_eq!(o.committed_masks(b)[0], 0b011);
        o.clear_intent(b);
        assert!(o.open_intents().is_empty());
    }

    #[test]
    fn bad_and_spare_flags_persist_until_set_back() {
        let mut o = store();
        let b = BlockAddr(9);
        o.set_spare(b, true);
        assert!(o.is_spare(b));
        o.set_spare(b, false);
        o.mark_bad(b);
        assert!(o.is_bad(b));
        assert_eq!(o.bad_count(), 1);
    }

    #[test]
    fn data_records_enumerate_only_data() {
        let mut o = store();
        let g = Geometry::tiny();
        let b = BlockAddr(0);
        o.record_program(b.page(&g, 0), 7);
        o.record_failed(b.page(&g, 1));
        let recs: Vec<_> = o.data_records().collect();
        assert_eq!(recs, vec![(b.page(&g, 0), 7, 0)]);
    }
}
