//! FTL configuration.

use ida_core::refresh::RefreshMode;
use ida_faults::{AgingConfig, FaultConfig};
use ida_flash::coding::CodingScheme;
use ida_flash::geometry::Geometry;
use ida_flash::timing::SimTime;

/// Nanoseconds in one simulated day, for refresh-period constants.
pub const NS_PER_DAY: SimTime = 86_400_000_000_000;

/// Which coding scheme the device programs cells with. IDA coding merges
/// states of *any* scheme (paper Section III-B), so the FTL is generic
/// over this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodingVariant {
    /// The density-appropriate conventional coding (SLC/MLC/TLC-1-2-4/QLC).
    Conventional,
    /// The alternative vendor TLC coding with 2/3/2 senses — flatter read
    /// latencies, less IDA headroom (TLC only).
    Tlc232,
}

impl CodingVariant {
    /// Materialize the coding scheme for `bits_per_cell`.
    ///
    /// # Panics
    ///
    /// Panics if `Tlc232` is requested on a non-TLC geometry.
    pub fn scheme(self, bits_per_cell: u8) -> CodingScheme {
        match self {
            CodingVariant::Conventional => CodingScheme::conventional(bits_per_cell),
            CodingVariant::Tlc232 => {
                assert_eq!(bits_per_cell, 3, "the 2-3-2 coding is TLC-specific");
                CodingScheme::tlc_232()
            }
        }
    }
}

ida_snap::snap_enum!(CodingVariant {
    0 => CodingVariant::Conventional,
    1 => CodingVariant::Tlc232,
});

/// Configuration of the flash translation layer.
#[derive(Debug, Clone, PartialEq)]
pub struct FtlConfig {
    /// Physical array organization.
    pub geometry: Geometry,
    /// Fraction of raw capacity reserved as over-provisioned space
    /// (the paper assumes 15 % \[24\]).
    pub overprovision: f64,
    /// Data-refresh period applied to every closed block. The paper uses
    /// 3 days – 3 months depending on the workload; experiment presets pick
    /// a period that yields a comparable number of refresh cycles within
    /// the (accelerated) trace.
    pub refresh_period: SimTime,
    /// Baseline or IDA-modified refresh flow.
    pub refresh_mode: RefreshMode,
    /// Probability that a page kept under IDA coding is corrupted by the
    /// voltage adjustment (the paper's E0–E80 knob; 0.20 = IDA-Coding-E20).
    pub adjust_error_rate: f64,
    /// RNG seed for the interference model.
    pub seed: u64,
    /// Free blocks per plane below which GC runs.
    pub gc_low_watermark: u32,
    /// Free blocks per plane GC restores before stopping.
    pub gc_high_watermark: u32,
    /// The cell coding scheme programmed into the array.
    pub coding: CodingVariant,
    /// Place pages evicted by IDA conversion onto same-type (fast LSB)
    /// slots of new blocks (Section III-C). Disable for the ablation that
    /// quantifies how much of the benefit this placement contributes.
    pub lsb_placement: bool,
    /// Erased blocks per plane reserved as bad-block spares. Zero (the
    /// default) disables the spare pool; fault experiments set it so grown
    /// bad blocks can be remapped before the device degrades to read-only.
    pub spare_blocks_per_plane: u32,
    /// The armed fault-injection plan ([`FaultConfig::none`] by default;
    /// [`crate::Ftl::arm_faults`] replaces it mid-run, after warm-up).
    pub faults: FaultConfig,
    /// The device-aging reliability model ([`AgingConfig::none`] by
    /// default; [`crate::Ftl::arm_aging`] replaces it mid-run, after
    /// warm-up, so warm-up traffic stays byte-identical to a fresh run).
    pub aging: AgingConfig,
}

ida_snap::snap_struct!(FtlConfig {
    geometry,
    overprovision,
    refresh_period,
    refresh_mode,
    adjust_error_rate,
    seed,
    gc_low_watermark,
    gc_high_watermark,
    coding,
    lsb_placement,
    spare_blocks_per_plane,
    faults,
    aging,
});

impl FtlConfig {
    /// Number of logical pages exposed to the host after over-provisioning.
    pub fn exported_pages(&self) -> u64 {
        let raw = self.geometry.total_pages();
        (raw as f64 * (1.0 - self.overprovision)) as u64
    }
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            geometry: Geometry::default(),
            overprovision: 0.15,
            refresh_period: 3 * NS_PER_DAY,
            refresh_mode: RefreshMode::Baseline,
            adjust_error_rate: 0.20,
            seed: 0x1DA_5EED,
            gc_low_watermark: 2,
            gc_high_watermark: 4,
            coding: CodingVariant::Conventional,
            lsb_placement: true,
            spare_blocks_per_plane: 0,
            faults: FaultConfig::none(),
            aging: AgingConfig::none(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exported_pages_apply_overprovisioning() {
        let cfg = FtlConfig {
            geometry: Geometry::tiny(),
            overprovision: 0.15,
            ..FtlConfig::default()
        };
        let raw = Geometry::tiny().total_pages();
        assert!(cfg.exported_pages() < raw);
        assert!((cfg.exported_pages() as f64 / raw as f64 - 0.85).abs() < 0.01);
    }

    #[test]
    fn coding_variants_materialize() {
        let c = CodingVariant::Conventional.scheme(3);
        assert_eq!(c.sense_count(2), 4);
        let alt = CodingVariant::Tlc232.scheme(3);
        assert_eq!(
            (alt.sense_count(0), alt.sense_count(1), alt.sense_count(2)),
            (2, 3, 2)
        );
    }

    #[test]
    #[should_panic(expected = "TLC-specific")]
    fn tlc232_rejected_on_mlc() {
        let _ = CodingVariant::Tlc232.scheme(2);
    }

    #[test]
    fn default_matches_paper_assumptions() {
        let cfg = FtlConfig::default();
        assert_eq!(cfg.overprovision, 0.15);
        assert_eq!(cfg.adjust_error_rate, 0.20);
        assert_eq!(cfg.refresh_mode, RefreshMode::Baseline);
    }
}
