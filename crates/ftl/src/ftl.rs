//! The FTL facade: host I/O, garbage collection, data refresh, fault
//! recovery.
//!
//! Volatile structures (page map, block table, allocator, refresh queue)
//! are rebuilt after a power loss from the simulated OOB metadata in
//! [`OobStore`]; see [`Ftl::recover`] for the scan and
//! `DESIGN.md` section 10 for the invariants it restores.

use crate::alloc::{Allocator, RecoveredPool};
use crate::block::{BlockState, BlockTable};
use crate::config::FtlConfig;
use crate::error::FtlError;
use crate::gc;
use crate::map::{Lpn, PageMap};
use crate::oob::OobStore;
use crate::ops::{FlashOp, FlashOpKind, OpOrigin, Priority, ReadOp, ReadScenario};
use crate::refresh::RefreshQueue;
use crate::stats::FtlStats;
use ida_core::merge::MergePlan;
use ida_core::refresh::{RefreshMode, RefreshPlanner};
use ida_faults::{AgingConfig, FaultConfig, FaultInjector, FaultStats, PersistOutcome};
use ida_flash::addr::{BlockAddr, PageAddr, PageType, PlaneAddr};
use ida_flash::geometry::Geometry;
use ida_flash::interference::InterferenceModel;
use ida_flash::timing::SimTime;
use ida_obs::trace::{SinkHandle, TraceEvent};

/// Program-fail redirects attempted before the injector is overridden and
/// the write forced through (keeps fault storms from livelocking a write).
const MAX_REDIRECTS: u32 = 8;

/// Where a page program originates, which decides how allocation pressure
/// is relieved when the free pools run dry.
#[derive(Debug, Clone, Copy)]
enum AllocSource {
    /// Host write: watermark GC ran already; force-collect as a last resort.
    Host,
    /// GC/refresh relocation: reclaim the globally cheapest victim until
    /// an allocation succeeds, degrading to read-only if none helps.
    Reloc {
        /// Preferred destination page type (Section III-C LSB placement).
        prefer_bit: Option<u8>,
    },
    /// GC copy-out: may dig into the victim plane's GC reserve.
    Gc {
        /// The victim's plane.
        plane: PlaneAddr,
    },
}

/// Summary of one post-power-loss recovery scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Logical mappings rebuilt from OOB program records.
    pub rebuilt_mappings: u64,
    /// Wordline merges rolled forward (pulse landed, commit mark lost).
    pub rolled_forward: u32,
    /// Kept pages of interrupted adjustments conservatively relocated.
    pub scrubbed: u32,
    /// Grown-bad blocks restored from OOB.
    pub bad_blocks: u32,
    /// Partially-programmed blocks resumed as their plane's active block.
    pub open_blocks: u32,
}

/// The flash translation layer.
///
/// Owns all logical SSD state and translates host operations into
/// [`FlashOp`] sequences for the simulator. See the crate docs for an
/// example.
#[derive(Debug)]
pub struct Ftl {
    cfg: FtlConfig,
    geometry: Geometry,
    /// Sense count per bit under conventional coding.
    sense_conventional: Vec<u32>,
    /// `sense_merged[keep_mask][bit]` — sense count under the merged coding
    /// for `keep_mask`, `None` when the bit is unreadable.
    sense_merged: Vec<Vec<Option<u32>>>,
    map: PageMap,
    blocks: BlockTable,
    alloc: Allocator,
    refresh_q: RefreshQueue,
    planner: RefreshPlanner,
    stats: FtlStats,
    /// The block currently being refreshed, excluded from GC victim
    /// selection so its pages are not relocated out from under the plan.
    refresh_target: Option<BlockAddr>,
    /// Trace sink for GC/refresh/IDA/fault events (null — free — by
    /// default).
    trace: SinkHandle,
    /// Simulated persistent metadata; the source of truth for recovery.
    oob: OobStore,
    /// The armed fault plan's live injector.
    injector: FaultInjector,
    /// Power was lost; the device rejects work until [`Ftl::recover`] runs.
    power_lost: bool,
    /// A recovery scan is running: injector draws and persistent-operation
    /// counting are suppressed (the scan itself cannot crash or fault).
    in_recovery: bool,
    /// Set when the device degraded to read-only, with the reason.
    read_only: Option<&'static str>,
    /// Attribution class stamped on emitted ops; flipped to GC/refresh
    /// while those paths run so interference is charged to its true cause.
    op_origin: OpOrigin,
    /// Next block the patrol scrub examines (round-robin over the array).
    scrub_cursor: u32,
    /// When the next patrol-scrub pass is due (`None` until
    /// [`Ftl::arm_aging`] arms an active model with a scrub period).
    next_scrub_at: Option<SimTime>,
}

// Manual snapshot impl: every mutable field travels verbatim except the
// trace sink (process-local; restored to null — the embedding simulator
// re-attaches its own handle) and `read_only`, whose `&'static str` reason
// round-trips through the closed set of literals used by
// `enter_read_only`.
impl ida_snap::Snap for Ftl {
    fn encode(&self, w: &mut ida_snap::Writer) {
        self.cfg.encode(w);
        self.geometry.encode(w);
        self.sense_conventional.encode(w);
        self.sense_merged.encode(w);
        self.map.encode(w);
        self.blocks.encode(w);
        self.alloc.encode(w);
        self.refresh_q.encode(w);
        self.planner.encode(w);
        self.stats.encode(w);
        self.refresh_target.encode(w);
        self.oob.encode(w);
        self.injector.encode(w);
        self.power_lost.encode(w);
        self.in_recovery.encode(w);
        self.read_only.map(str::to_owned).encode(w);
        self.op_origin.encode(w);
        self.scrub_cursor.encode(w);
        self.next_scrub_at.encode(w);
    }

    fn decode(r: &mut ida_snap::Reader<'_>) -> Result<Self, ida_snap::SnapError> {
        let cfg = FtlConfig::decode(r)?;
        let geometry = Geometry::decode(r)?;
        let sense_conventional = Vec::decode(r)?;
        let sense_merged = Vec::decode(r)?;
        let map = PageMap::decode(r)?;
        let blocks = BlockTable::decode(r)?;
        let alloc = Allocator::decode(r)?;
        let refresh_q = RefreshQueue::decode(r)?;
        let planner = RefreshPlanner::decode(r)?;
        let stats = FtlStats::decode(r)?;
        let refresh_target = Option::decode(r)?;
        let oob = OobStore::decode(r)?;
        let injector = FaultInjector::decode(r)?;
        let power_lost = bool::decode(r)?;
        let in_recovery = bool::decode(r)?;
        let read_only = match Option::<String>::decode(r)? {
            None => None,
            Some(s) => Some(match s.as_str() {
                "relocation space exhausted" => "relocation space exhausted",
                "GC reserve exhausted" => "GC reserve exhausted",
                "spare pool exhausted" => "spare pool exhausted",
                other => {
                    return Err(ida_snap::SnapError::new(format!(
                        "unknown read-only reason {other:?}"
                    )))
                }
            }),
        };
        let op_origin = OpOrigin::decode(r)?;
        let scrub_cursor = u32::decode(r)?;
        let next_scrub_at = Option::decode(r)?;
        Ok(Ftl {
            cfg,
            geometry,
            sense_conventional,
            sense_merged,
            map,
            blocks,
            alloc,
            refresh_q,
            planner,
            stats,
            refresh_target,
            trace: SinkHandle::null(),
            oob,
            injector,
            power_lost,
            in_recovery,
            read_only,
            op_origin,
            scrub_cursor,
            next_scrub_at,
        })
    }
}

impl Ftl {
    /// Build an FTL over an empty (all-erased) flash array.
    pub fn new(cfg: FtlConfig) -> Self {
        cfg.geometry.validate();
        let bits = cfg.geometry.bits_per_cell as u8;
        let coding = cfg.coding.scheme(bits);
        let sense_conventional = (0..bits).map(|b| coding.sense_count(b)).collect();
        let sense_merged = (0..(1u16 << bits))
            .map(|mask| {
                let plan = MergePlan::compute(&coding, mask as u8);
                (0..bits)
                    .map(|b| {
                        plan.merged()
                            .is_readable(b)
                            .then(|| plan.merged().sense_count(b))
                    })
                    .collect()
            })
            .collect();
        let planner = RefreshPlanner::new(
            bits,
            cfg.refresh_mode,
            InterferenceModel::with_seed(cfg.adjust_error_rate, cfg.seed),
        );
        let mut oob = OobStore::new(cfg.geometry);
        let alloc = if cfg.spare_blocks_per_plane > 0 {
            let (alloc, spares) = Allocator::with_spares(cfg.geometry, cfg.spare_blocks_per_plane);
            for b in spares {
                oob.set_spare(b, true);
            }
            alloc
        } else {
            Allocator::new(cfg.geometry)
        };
        let injector = FaultInjector::new(cfg.faults.clone());
        Ftl {
            map: PageMap::new(cfg.exported_pages(), cfg.geometry.total_pages()),
            blocks: BlockTable::new(cfg.geometry),
            alloc,
            refresh_q: RefreshQueue::new(),
            planner,
            geometry: cfg.geometry,
            sense_conventional,
            sense_merged,
            stats: FtlStats::default(),
            refresh_target: None,
            trace: SinkHandle::null(),
            oob,
            injector,
            power_lost: false,
            in_recovery: false,
            read_only: None,
            op_origin: OpOrigin::Host,
            scrub_cursor: 0,
            next_scrub_at: (cfg.aging.is_active() && cfg.aging.scrub_period > 0)
                .then_some(cfg.aging.scrub_period),
            cfg,
        }
    }

    /// Attach a trace sink. The simulator shares its own handle so FTL
    /// events (GC, refresh, IDA conversion, faults) interleave with flash
    /// events in one stream.
    pub fn set_trace(&mut self, trace: SinkHandle) {
        self.trace = trace;
    }

    /// The configuration in force.
    pub fn config(&self) -> &FtlConfig {
        &self.cfg
    }

    /// Change the refresh period for blocks scheduled from now on
    /// (experiments size the period relative to the trace span).
    pub fn set_refresh_period(&mut self, period: SimTime) {
        self.cfg.refresh_period = period;
    }

    /// Replace the armed fault plan. Experiments arm faults *after*
    /// warm-up, so the steady-state population is built fault-free and the
    /// injector's operation counter (which drives the power-loss schedule)
    /// starts at the measurement boundary.
    pub fn arm_faults(&mut self, faults: FaultConfig) {
        self.injector = FaultInjector::new(faults.clone());
        self.cfg.faults = faults;
    }

    /// Replace the armed aging model. Like faults, aging is armed *after*
    /// warm-up so the steady-state population is built on a byte-identical
    /// fresh device; the first patrol-scrub pass is scheduled one period
    /// after `now`.
    pub fn arm_aging(&mut self, aging: AgingConfig, now: SimTime) {
        self.next_scrub_at = (aging.is_active() && aging.scrub_period > 0)
            .then(|| now.saturating_add(aging.scrub_period));
        self.cfg.aging = aging;
    }

    /// Apply `cycles` of uniform background P/E wear to every block — the
    /// accelerated-lifetime lever the soak harness pulls between epochs.
    /// Stored as an offset outside the per-block erase counts so the GC
    /// victim index never needs rebuilding.
    pub fn advance_wear(&mut self, cycles: u32) {
        self.blocks.add_wear_offset(cycles);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// Totals of the faults the injector actually fired.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// The block status table (read-only view for metrics/tests).
    pub fn blocks(&self) -> &BlockTable {
        &self.blocks
    }

    /// The simulated OOB metadata (read-only view for tests).
    pub fn oob(&self) -> &OobStore {
        &self.oob
    }

    /// Whether power was lost; [`Ftl::recover`] clears this.
    pub fn power_lost(&self) -> bool {
        self.power_lost
    }

    /// Why the device is read-only, if it degraded.
    pub fn read_only_reason(&self) -> Option<&'static str> {
        self.read_only
    }

    /// Bad-block spares remaining across all planes.
    pub fn total_spares(&self) -> u64 {
        self.alloc.total_spares()
    }

    /// Number of logical pages the host may address.
    pub fn exported_pages(&self) -> u64 {
        self.map.logical_pages()
    }

    /// Whether physical page `p` currently holds valid data.
    pub fn is_valid(&self, p: PageAddr) -> bool {
        self.map.is_valid(p)
    }

    /// Sensing operations a read of physical page `p` needs under the
    /// wordline's current coding.
    pub fn senses_for(&self, p: PageAddr) -> u32 {
        let bit = p.page_type(&self.geometry).bit_index();
        let block = p.block(&self.geometry);
        if self.blocks.state(block) == BlockState::Ida {
            let wl = p.wordline(&self.geometry).offset_in_block(&self.geometry);
            let mask = self.blocks.wl_keep_mask(block, wl);
            if mask != 0 {
                return self.sense_merged[mask as usize][bit as usize]
                    .expect("valid page of an adjusted wordline must be readable");
            }
        }
        self.sense_conventional[bit as usize]
    }

    /// Translate and classify a host read of `lpn`. Returns `None` if the
    /// LPN was never written (the host reads zeros; no flash work).
    ///
    /// Equivalent to [`Ftl::read_at`] at time zero — callers that do not
    /// track simulated time (tests, benches) see no aging contribution.
    pub fn read(&mut self, lpn: Lpn) -> Option<ReadOp> {
        self.read_at(lpn, 0)
    }

    /// Translate and classify a host read of `lpn` issued at `now`,
    /// charging the wordline's read-disturb counter and stamping the
    /// modeled RBER (0.0 while aging is disarmed) for the simulator's
    /// retry ladder.
    pub fn read_at(&mut self, lpn: Lpn, now: SimTime) -> Option<ReadOp> {
        let page = self.map.translate(lpn)?;
        self.stats.host_reads += 1;
        let fault_attempts = if self.in_recovery {
            0
        } else {
            self.injector.transient_read_attempts()
        };
        if fault_attempts > 0 {
            self.stats.transient_read_faults += 1;
        }
        let rber = if self.cfg.aging.is_active() && !self.in_recovery {
            let block = page.block(&self.geometry);
            let wl = page
                .wordline(&self.geometry)
                .offset_in_block(&self.geometry);
            let wl_reads = self.blocks.record_wl_read(block, wl);
            // Retention age runs from block close; an open block's data is
            // by definition freshly programmed.
            let age = match self.blocks.state(block) {
                BlockState::Closed | BlockState::Ida => {
                    now.saturating_sub(self.blocks.closed_at(block))
                }
                _ => 0,
            };
            let r = self
                .cfg
                .aging
                .rber(self.blocks.effective_wear(block), wl_reads, age);
            self.stats.rber_e9_sum += (r * 1e9) as u64;
            r
        } else {
            0.0
        };
        let ty = page.page_type(&self.geometry);
        let senses = self.senses_for(page);
        let scenario = self.classify_read(page, ty);
        if scenario == ReadScenario::IdaCoded {
            self.stats.ida_reads += 1;
        }
        Some(ReadOp {
            page,
            page_type: ty,
            senses,
            scenario,
            die: page.die(&self.geometry),
            channel: page.channel(&self.geometry),
            fault_attempts,
            rber,
        })
    }

    fn classify_read(&self, page: PageAddr, ty: PageType) -> ReadScenario {
        let block = page.block(&self.geometry);
        let wl = page.wordline(&self.geometry);
        if self.blocks.state(block) == BlockState::Ida
            && self
                .blocks
                .wl_keep_mask(block, wl.offset_in_block(&self.geometry))
                != 0
        {
            return ReadScenario::IdaCoded;
        }
        let bit = ty.bit_index();
        if bit == 0 {
            return ReadScenario::Lsb;
        }
        let lower_all_valid = (0..bit).all(|b| {
            self.map
                .is_valid(wl.page(&self.geometry, PageType::from_bit_index(b)))
        });
        match (bit, lower_all_valid) {
            (1, true) => ReadScenario::CsbLowerValid,
            (1, false) => ReadScenario::CsbLowerInvalid,
            (_, true) => ReadScenario::MsbLowerValid,
            (_, false) => ReadScenario::MsbLowerInvalid,
        }
    }

    /// Serve a host page write: allocates a physical page in CWDP order,
    /// supersedes any previous version, and returns the flash ops to
    /// execute (GC traffic first if the free pool ran low, then the
    /// program itself).
    ///
    /// # Errors
    ///
    /// [`FtlError::PowerLoss`] if an injected power loss fired before the
    /// write committed (run [`Ftl::recover`] before retrying),
    /// [`FtlError::ReadOnly`] if the device has degraded to read-only
    /// mode, and [`FtlError::OutOfSpace`] if the host exceeded the
    /// exported capacity.
    pub fn write(&mut self, lpn: Lpn, now: SimTime) -> Result<Vec<FlashOp>, FtlError> {
        if self.power_lost {
            return Err(FtlError::PowerLoss);
        }
        if let Some(reason) = self.read_only {
            return Err(self.reject_write(lpn, now, reason));
        }
        let mut ops = Vec::new();
        self.collect_if_needed(now, &mut ops);
        if self.power_lost {
            return Err(FtlError::PowerLoss);
        }
        match self.program_data(lpn, AllocSource::Host, now, Priority::HostWrite, &mut ops) {
            Some(page) => {
                if let Some(old) = self.map.map(lpn, page) {
                    self.blocks.invalidate_page(old.block(&self.geometry));
                }
                self.stats.host_writes += 1;
                Ok(ops)
            }
            None if self.power_lost => Err(FtlError::PowerLoss),
            None => match self.read_only {
                Some(reason) => Err(self.reject_write(lpn, now, reason)),
                None => Err(FtlError::OutOfSpace),
            },
        }
    }

    fn reject_write(&mut self, lpn: Lpn, now: SimTime, reason: &'static str) -> FtlError {
        self.stats.rejected_writes += 1;
        self.trace
            .emit_with(|| TraceEvent::WriteRejected { t: now, lpn: lpn.0 });
        FtlError::ReadOnly { reason }
    }

    /// Host trim/discard of `lpn`. Trim is volatile and advisory: it only
    /// updates the in-DRAM map, so trimmed data may resurrect after a
    /// power loss (the OOB record still names it newest — the behavior
    /// real SSDs exhibit with non-deterministic trim).
    pub fn trim(&mut self, lpn: Lpn) {
        if let Some(old) = self.map.unmap(lpn) {
            self.blocks.invalidate_page(old.block(&self.geometry));
        }
    }

    /// Account one persistent operation against the armed fault plan.
    /// Returns `true` when power was lost — the caller must abandon its
    /// in-flight mutation *before* touching persistent state.
    fn persist(&mut self, now: SimTime) -> bool {
        if self.in_recovery {
            return false;
        }
        match self.injector.persist() {
            PersistOutcome::Committed => false,
            PersistOutcome::PowerLost { op_index } => {
                self.power_lost = true;
                self.stats.power_losses += 1;
                self.trace
                    .emit_with(|| TraceEvent::FaultPowerLoss { t: now, op_index });
                true
            }
        }
    }

    fn enter_read_only(&mut self, now: SimTime, reason: &'static str) {
        if self.read_only.is_none() {
            self.read_only = Some(reason);
            self.trace
                .emit_with(|| TraceEvent::ReadOnlyMode { t: now, reason });
        }
    }

    /// Allocate a destination page for `src`, applying the source-specific
    /// pressure-relief strategy. `None` means power loss or degradation.
    fn try_alloc(
        &mut self,
        src: AllocSource,
        now: SimTime,
        ops: &mut Vec<FlashOp>,
    ) -> Option<PageAddr> {
        match src {
            AllocSource::Host => {
                if let Some(p) = self.alloc.allocate(&mut self.blocks, now) {
                    return Some(p);
                }
                self.force_collect(now, ops);
                if self.power_lost {
                    return None;
                }
                self.alloc.allocate(&mut self.blocks, now)
            }
            AllocSource::Reloc { prefer_bit } => {
                // Long refresh chains can outrun the watermark GC that the
                // host write path performs; reclaim the globally cheapest
                // victim (empty carcasses first) until an allocation
                // succeeds. Under fault injection reclaim can genuinely
                // stall (erases failing everywhere), so the bound degrades
                // to read-only instead of panicking.
                let mut attempts = 0u32;
                loop {
                    if let Some(p) = self.allocate_maybe_preferring(prefer_bit, now) {
                        return Some(p);
                    }
                    if self.power_lost {
                        return None;
                    }
                    attempts += 1;
                    if attempts > 64 || !self.reclaim_cheapest(now, ops) {
                        self.enter_read_only(now, "relocation space exhausted");
                        return None;
                    }
                    if self.power_lost {
                        return None;
                    }
                }
            }
            AllocSource::Gc { plane } => {
                // Prefer spreading relocated pages across the device
                // (otherwise a nearly-full victim would eat the very pool
                // its erase refills); the per-plane reserve is the
                // fallback of last resort. Fault injection can break the
                // reserve guarantee (failed pages burn allocations, failed
                // erases never repay), so exhaustion degrades gracefully.
                let dest = self
                    .alloc
                    .allocate(&mut self.blocks, now)
                    .or_else(|| self.alloc.allocate_gc(plane, &mut self.blocks, now));
                if dest.is_none() && !self.power_lost {
                    self.enter_read_only(now, "GC reserve exhausted");
                }
                dest
            }
        }
    }

    /// Program `lpn`'s data onto a freshly allocated page, absorbing
    /// injected program failures by redirecting to another fresh page
    /// (the victim page is marked failed and stays burned until its
    /// block's next erase). Returns the page that took the data, or
    /// `None` on power loss / degradation.
    fn program_data(
        &mut self,
        lpn: Lpn,
        src: AllocSource,
        now: SimTime,
        priority: Priority,
        ops: &mut Vec<FlashOp>,
    ) -> Option<PageAddr> {
        let mut attempts = 0u32;
        loop {
            if self.power_lost {
                return None;
            }
            let page = self.try_alloc(src, now, ops)?;
            ops.push(self.program_op(page, priority));
            if self.persist(now) {
                return None;
            }
            if attempts < MAX_REDIRECTS && !self.in_recovery && self.injector.program_fails() {
                attempts += 1;
                self.stats.injected_program_fails += 1;
                self.oob.record_failed(page);
                self.blocks.invalidate_page(page.block(&self.geometry));
                self.after_allocation(page, now);
                self.trace.emit_with(|| TraceEvent::FaultProgramFail {
                    t: now,
                    block: page.block(&self.geometry).0 as u64,
                    page: page.0,
                });
                continue;
            }
            self.oob.record_program(page, lpn.0);
            self.after_allocation(page, now);
            if attempts > 0 {
                self.stats.write_redirects += 1;
                self.trace.emit_with(|| TraceEvent::WriteRedirect {
                    t: now,
                    lpn: lpn.0,
                    page: page.0,
                    attempts,
                });
            }
            return Some(page);
        }
    }

    /// The earliest pending refresh due-time, if any (may be stale; calling
    /// [`Ftl::run_due_refreshes`] at that time resolves staleness).
    pub fn next_refresh_due(&self) -> Option<SimTime> {
        self.refresh_q.next_due()
    }

    /// Execute every refresh due at `now`, returning the flash ops.
    pub fn run_due_refreshes(&mut self, now: SimTime) -> Vec<FlashOp> {
        let mut ops = Vec::new();
        loop {
            if self.power_lost {
                break;
            }
            let blocks = &self.blocks;
            let due = self.refresh_q.pop_due(now, |b, snap| {
                matches!(blocks.state(b), BlockState::Closed | BlockState::Ida)
                    && blocks.closed_at(b) == snap
            });
            match due {
                Some(block) => self.refresh_block(block, now, &mut ops),
                None => break,
            }
        }
        ops
    }

    /// When the next patrol-scrub pass is due. `None` while aging is
    /// disarmed, scrub is disabled, or the device can no longer relocate
    /// (power lost / read-only).
    pub fn next_scrub_due(&self) -> Option<SimTime> {
        if self.power_lost || self.read_only.is_some() {
            return None;
        }
        self.next_scrub_at
    }

    /// Run one patrol-scrub pass: examine the next `scrub_chunk` blocks,
    /// relocate wordlines whose read-disturb count or retention age
    /// crossed the armed thresholds, then let the wear-leveler migrate
    /// cold data off the least-worn block if the wear spread exceeds its
    /// target. Returns the background flash ops; reschedules itself one
    /// scrub period out.
    pub fn run_scrub_pass(&mut self, now: SimTime) -> Vec<FlashOp> {
        let mut ops = Vec::new();
        let Some(due) = self.next_scrub_due() else {
            return ops;
        };
        if now < due {
            return ops;
        }
        let aging = self.cfg.aging.clone();
        let saved = self.op_origin;
        self.op_origin = OpOrigin::Refresh;
        let total = self.geometry.total_blocks();
        let mut scanned = 0u32;
        let mut relocated = 0u32;
        'scan: for _ in 0..aging.scrub_chunk.min(total) {
            if self.power_lost || self.read_only.is_some() {
                break;
            }
            let b = BlockAddr(self.scrub_cursor);
            self.scrub_cursor = (self.scrub_cursor + 1) % total;
            scanned += 1;
            if !matches!(self.blocks.state(b), BlockState::Closed | BlockState::Ida) {
                continue;
            }
            let age = now.saturating_sub(self.blocks.closed_at(b));
            let retention_risk = aging.retention_threshold > 0 && age >= aging.retention_threshold;
            for wl in 0..self.geometry.wordlines_per_block {
                let disturbed = aging.disturb_threshold > 0
                    && self.blocks.wl_reads(b, wl) >= aging.disturb_threshold;
                if !retention_risk && !disturbed {
                    continue;
                }
                for bit in 0..self.geometry.bits_per_cell as u8 {
                    let page = self.block_page(b, wl, bit);
                    if !self.map.is_valid(page) {
                        continue;
                    }
                    ops.push(self.read_op(page, Priority::Background));
                    if !self.relocate_page(page, now, None, &mut ops) {
                        break 'scan;
                    }
                    self.stats.scrub_relocations += 1;
                    relocated += 1;
                }
            }
        }
        let wear_moves = self.wear_level_pass(now, &aging, &mut ops);
        self.stats.scrub_passes += 1;
        self.trace.emit_with(|| TraceEvent::ScrubPass {
            t: now,
            scanned,
            relocated,
            wear_moves,
        });
        self.next_scrub_at = Some(now.saturating_add(aging.scrub_period.max(1)));
        self.op_origin = saved;
        ops
    }

    /// Migrate valid data off the coldest (least-worn) block when the
    /// device's wear spread exceeds the armed target, then erase it so it
    /// rejoins the hot allocation rotation. Returns pages moved.
    fn wear_level_pass(
        &mut self,
        now: SimTime,
        aging: &AgingConfig,
        ops: &mut Vec<FlashOp>,
    ) -> u32 {
        if self.power_lost || self.read_only.is_some() || aging.wear_spread_target == 0 {
            return 0;
        }
        let summary = self.blocks.wear_summary();
        if summary.spread <= aging.wear_spread_target {
            return 0;
        }
        let Some(cold) = self.blocks.coldest_block(self.refresh_target) else {
            return 0;
        };
        let mut moves = 0u32;
        for off in 0..self.geometry.pages_per_block() {
            let page = cold.page(&self.geometry, off);
            if !self.map.is_valid(page) {
                continue;
            }
            ops.push(self.read_op(page, Priority::Background));
            if !self.relocate_page(page, now, None, ops) {
                return moves;
            }
            self.stats.wear_level_moves += 1;
            moves += 1;
        }
        if !self.power_lost && self.read_only.is_none() && self.blocks.valid_pages(cold) == 0 {
            self.erase_block(cold, now, ops);
        }
        self.trace.emit_with(|| TraceEvent::WearLevel {
            t: now,
            block: cold.0 as u64,
            moves,
            spread: summary.spread,
        });
        moves
    }

    /// Handle a read whose retry ladder exhausted: the final heroic read
    /// recovered the data, so it is immediately relocated to a fresh block
    /// and remapped (never silent corruption — the at-risk physical page
    /// is retired from service until its block's next erase). Returns the
    /// background relocation ops.
    pub fn handle_uncorrectable(&mut self, lpn: Lpn, page: PageAddr, now: SimTime) -> Vec<FlashOp> {
        let mut ops = Vec::new();
        self.stats.ecc_uncorrectables += 1;
        let block = page.block(&self.geometry);
        self.trace.emit_with(|| TraceEvent::EccUncorrectable {
            t: now,
            lpn: lpn.0,
            page: page.0,
            block: block.0 as u64,
            attempts: self.cfg.aging.ladder_depth,
        });
        if self.power_lost || self.read_only.is_some() {
            return ops;
        }
        // The map may have moved the page since the read was issued
        // (refresh/GC raced it); the data is safe elsewhere — nothing to do.
        if self.map.owner(page) != Some(lpn) {
            return ops;
        }
        let saved = self.op_origin;
        self.op_origin = OpOrigin::Refresh;
        self.relocate_page(page, now, None, &mut ops);
        self.op_origin = saved;
        ops
    }

    /// Account `extra` ladder retry attempts charged by the simulator.
    pub fn note_ladder_retries(&mut self, extra: u32) {
        self.stats.ladder_retries += u64::from(extra);
    }

    /// Whether `lpn` currently maps to a physical page (soak-harness
    /// invariant: every acked write stays mapped for the device lifetime).
    pub fn is_mapped(&self, lpn: Lpn) -> bool {
        self.map.translate(lpn).is_some()
    }

    /// Refresh one block immediately (also used by tests and experiments
    /// that drive refresh manually). No-op once power is lost or the
    /// device went read-only (a degraded device stops background work).
    pub fn refresh_block(&mut self, block: BlockAddr, now: SimTime, ops: &mut Vec<FlashOp>) {
        if self.power_lost || self.read_only.is_some() {
            return;
        }
        self.refresh_target = Some(block);
        let saved = self.op_origin;
        self.op_origin = OpOrigin::Refresh;
        self.refresh_block_inner(block, now, ops);
        self.op_origin = saved;
        self.refresh_target = None;
    }

    fn refresh_block_inner(&mut self, block: BlockAddr, now: SimTime, ops: &mut Vec<FlashOp>) {
        self.stats.refreshes += 1;
        let moves_before = self.stats.refresh_moves;
        let state = self.blocks.state(block);
        let wl_masks = self.wl_valid_masks(block);

        // IDA blocks are reclaimed on their next cycle: baseline move-all,
        // regardless of the configured mode (Section III-C).
        let plan = if state == BlockState::Ida || self.planner.mode() == RefreshMode::Baseline {
            let mut baseline = RefreshPlanner::new(
                self.geometry.bits_per_cell as u8,
                RefreshMode::Baseline,
                InterferenceModel::new(0.0),
            );
            baseline.plan_block(&wl_masks)
        } else {
            let plan = self.planner.plan_block(&wl_masks);
            self.stats.refresh_overhead.record(&plan);
            plan
        };

        // Step 1: read every valid page (and charge its current coding).
        for &(wl, bit) in &plan.initial_reads {
            let page = self.block_page(block, wl, bit);
            ops.push(self.read_op(page, Priority::Background));
        }
        // Step 3: migrate non-beneficial pages (plain CWDP placement) and
        // evicted pages (placed on same-type — typically fast LSB — slots
        // of new blocks, Section III-C).
        for &(wl, bit) in &plan.moves {
            let page = self.block_page(block, wl, bit);
            if !self.relocate_page(page, now, None, ops) {
                return;
            }
            self.stats.refresh_moves += 1;
        }
        for &(wl, bit) in &plan.evictions {
            let page = self.block_page(block, wl, bit);
            let prefer = self.cfg.lsb_placement.then_some(bit);
            if !self.relocate_page(page, now, prefer, ops) {
                return;
            }
            self.stats.refresh_moves += 1;
        }
        // Step 4: voltage-adjust the selected wordlines under the intent
        // journal. Protocol: persist the intent, then per wordline persist
        // the pulse (merge record) and persist the commit mark; the intent
        // is cleared only after the verification reads and error writes.
        // A crash at any point leaves each wordline either fully merged
        // (rolled forward by recovery) or fully unmerged.
        if !plan.adjusted_wordlines.is_empty() {
            let masks: Vec<(u32, u8)> = plan
                .adjusted_wordlines
                .iter()
                .copied()
                .zip(plan.keep_masks.iter().copied())
                .collect();
            if self.persist(now) {
                return;
            }
            self.oob.set_intent(block, &masks);
            for &(wl, mask) in &masks {
                ops.push(FlashOp {
                    kind: FlashOpKind::VoltageAdjust,
                    die: block.die(&self.geometry),
                    channel: block.channel(&self.geometry),
                    block,
                    page: None,
                    priority: Priority::Background,
                    origin: self.op_origin,
                });
                if self.persist(now) {
                    return;
                }
                self.oob.record_merge(block, wl, mask);
                if self.persist(now) {
                    return;
                }
                self.oob.commit_merge(block, wl);
            }
            self.blocks.mark_ida(block, &masks, now);
            self.stats.ida_conversions += 1;
            self.stats.voltage_adjusts += plan.adjusted_wordlines.len() as u64;
            self.trace.emit_with(|| TraceEvent::IdaConversion {
                t: now,
                block: block.0 as u64,
                wordlines: plan.adjusted_wordlines.len() as u32,
            });
            // Step 5: verification reads under the merged coding.
            for &(wl, bit) in &plan.verify_reads {
                let page = self.block_page(block, wl, bit);
                ops.push(self.read_op(page, Priority::Background));
            }
            // Step 8: corrupted pages move to the new block after all.
            for &(wl, bit) in &plan.error_writes {
                let page = self.block_page(block, wl, bit);
                if !self.relocate_page(page, now, None, ops) {
                    return;
                }
            }
            if self.persist(now) {
                return;
            }
            self.oob.clear_intent(block);
            // Schedule the forced reclaim of the new IDA block.
            self.refresh_q
                .schedule(block, now, now + self.cfg.refresh_period);
        }
        // A baseline-refreshed block is left fully invalid for GC to erase.
        self.trace.emit_with(|| TraceEvent::RefreshBlock {
            t: now,
            block: block.0 as u64,
            moves: (self.stats.refresh_moves - moves_before) as u32,
            adjusted_wordlines: plan.adjusted_wordlines.len() as u32,
            ida: !plan.adjusted_wordlines.is_empty(),
        });
    }

    /// Garbage-collect `plane`-local space until the high watermark is
    /// restored (or no victims remain). Returns whether anything happened.
    pub fn collect_plane(
        &mut self,
        plane: PlaneAddr,
        now: SimTime,
        ops: &mut Vec<FlashOp>,
    ) -> bool {
        let mut progressed = false;
        // Power loss and read-only degradation both stop GC cold: a
        // degraded device can no longer relocate, so re-selecting the same
        // victim would spin forever.
        while !self.power_lost
            && self.read_only.is_none()
            && self.alloc.free_count(plane) < self.cfg.gc_high_watermark
        {
            let Some(victim) = gc::select_victim(&self.blocks, plane, self.refresh_target) else {
                break;
            };
            self.collect_victim(victim, now, ops);
            progressed = true;
        }
        progressed
    }

    /// Reclaim the globally cheapest victim (fewest valid pages; an empty
    /// carcass whenever one exists). Returns false when nothing is
    /// reclaimable.
    fn reclaim_cheapest(&mut self, now: SimTime, ops: &mut Vec<FlashOp>) -> bool {
        // O(planes) via the victim index — the global minimum under the
        // same (valid, erases, BlockAddr) ordering the old device-wide
        // scan produced (fully valid blocks yield no net space and are
        // skipped; see gc::select_victim).
        let victim = self.blocks.victim_global(self.refresh_target);
        match victim {
            Some(v) => {
                self.collect_victim(v, now, ops);
                true
            }
            None => false,
        }
    }

    /// Relocate a victim's valid pages within its plane and erase it.
    /// Bails (leaving the victim unerased, its remaining pages intact) on
    /// power loss or read-only degradation mid-copy.
    fn collect_victim(&mut self, victim: BlockAddr, now: SimTime, ops: &mut Vec<FlashOp>) {
        // GC can trigger inside a refresh (relocation pressure); its ops
        // are still GC interference, so the class wins over Refresh here.
        let saved = self.op_origin;
        self.op_origin = OpOrigin::Gc;
        self.collect_victim_inner(victim, now, ops);
        self.op_origin = saved;
    }

    fn collect_victim_inner(&mut self, victim: BlockAddr, now: SimTime, ops: &mut Vec<FlashOp>) {
        self.stats.gc_runs += 1;
        let plane = victim.plane(&self.geometry);
        let mut copies = 0u32;
        for off in 0..self.geometry.pages_per_block() {
            let page = victim.page(&self.geometry, off);
            if self.map.is_valid(page) {
                ops.push(self.read_op(page, Priority::Background));
                if !self.relocate_for_gc(page, plane, now, ops) {
                    return;
                }
                self.stats.gc_copies += 1;
                copies += 1;
            }
        }
        self.trace.emit_with(|| TraceEvent::GcRun {
            t: now,
            block: victim.0 as u64,
            copies,
        });
        self.erase_block(victim, now, ops);
    }

    /// Erase an emptied block, absorbing injected erase failures (the
    /// block retires) and retiring blocks whose failed-page count crossed
    /// the grown-bad threshold.
    fn erase_block(&mut self, victim: BlockAddr, now: SimTime, ops: &mut Vec<FlashOp>) {
        ops.push(FlashOp {
            kind: FlashOpKind::Erase,
            die: victim.die(&self.geometry),
            channel: victim.channel(&self.geometry),
            block: victim,
            page: None,
            priority: Priority::Background,
            origin: self.op_origin,
        });
        if self.persist(now) {
            return;
        }
        if !self.in_recovery && self.injector.erase_fails() {
            self.stats.injected_erase_fails += 1;
            self.trace.emit_with(|| TraceEvent::FaultEraseFail {
                t: now,
                block: victim.0 as u64,
            });
            self.retire_block(victim, now, "erase_failure");
            return;
        }
        let failed_pages = self.oob.failed_count(victim);
        self.oob.record_erase(victim);
        self.blocks.erase(victim);
        self.stats.erases += 1;
        let threshold = self.cfg.faults.bad_block_threshold;
        if threshold > 0 && failed_pages >= threshold {
            self.retire_block(victim, now, "program_failures");
        } else {
            self.alloc.push_free(victim);
        }
    }

    /// Retire `block` to the grown-bad list, promoting a spare from its
    /// plane's pool when one remains; otherwise the device degrades to
    /// read-only (the explicit-degradation path).
    fn retire_block(&mut self, block: BlockAddr, now: SimTime, reason: &'static str) {
        self.blocks.mark_bad(block);
        self.oob.mark_bad(block);
        self.stats.retired_blocks += 1;
        let spare = self.alloc.take_spare(block.plane(&self.geometry));
        if let Some(s) = spare {
            self.oob.set_spare(s, false);
            self.alloc.push_free(s);
        }
        self.trace.emit_with(|| TraceEvent::BlockRetired {
            t: now,
            block: block.0 as u64,
            reason,
            spare_used: spare.is_some(),
        });
        if spare.is_none() {
            self.enter_read_only(now, "spare pool exhausted");
        }
    }

    fn collect_if_needed(&mut self, now: SimTime, ops: &mut Vec<FlashOp>) {
        let (plane, free) = self.alloc.tightest_plane();
        if free < self.cfg.gc_low_watermark {
            self.collect_plane(plane, now, ops);
        }
    }

    fn force_collect(&mut self, now: SimTime, ops: &mut Vec<FlashOp>) {
        let planes = self.geometry.total_planes();
        for p in 0..planes {
            if self.power_lost {
                return;
            }
            self.collect_plane(PlaneAddr(p), now, ops);
        }
    }

    /// Move a valid page into a freshly allocated location, emitting the
    /// program op (the read is charged by the caller where appropriate).
    /// `prefer_bit` requests a destination slot of the given page type.
    /// Returns false on power loss or read-only degradation (the source
    /// page keeps its data).
    fn relocate_page(
        &mut self,
        from: PageAddr,
        now: SimTime,
        prefer_bit: Option<u8>,
        ops: &mut Vec<FlashOp>,
    ) -> bool {
        let Some(lpn) = self.map.owner(from) else {
            return true; // Already superseded; nothing to move.
        };
        let src = AllocSource::Reloc { prefer_bit };
        let Some(dest) = self.program_data(lpn, src, now, Priority::Background, ops) else {
            return false;
        };
        let moved = self.map.relocate(from, dest);
        debug_assert_eq!(moved, Some(lpn), "relocation source {from} was invalid");
        self.blocks.invalidate_page(from.block(&self.geometry));
        true
    }

    /// GC relocation: stays inside the victim's plane using the GC reserve
    /// (the erase about to happen repays it) when device-wide allocation
    /// fails. Returns false on power loss or degradation.
    fn relocate_for_gc(
        &mut self,
        from: PageAddr,
        plane: PlaneAddr,
        now: SimTime,
        ops: &mut Vec<FlashOp>,
    ) -> bool {
        let Some(lpn) = self.map.owner(from) else {
            return true;
        };
        let src = AllocSource::Gc { plane };
        let Some(dest) = self.program_data(lpn, src, now, Priority::Background, ops) else {
            return false;
        };
        let moved = self.map.relocate(from, dest);
        debug_assert_eq!(moved, Some(lpn), "relocation source {from} was invalid");
        self.blocks.invalidate_page(from.block(&self.geometry));
        true
    }

    fn allocate_maybe_preferring(
        &mut self,
        prefer_bit: Option<u8>,
        now: SimTime,
    ) -> Option<PageAddr> {
        match prefer_bit {
            Some(bit) => self.alloc.allocate_preferring(bit, &mut self.blocks, now),
            None => self.alloc.allocate(&mut self.blocks, now),
        }
    }

    /// Post-allocation bookkeeping: schedule refresh when a block closes.
    fn after_allocation(&mut self, page: PageAddr, now: SimTime) {
        let block = page.block(&self.geometry);
        if self.blocks.state(block) == BlockState::Closed
            && page.offset_in_block(&self.geometry) == self.geometry.pages_per_block() - 1
        {
            self.refresh_q.schedule(
                block,
                self.blocks.closed_at(block),
                now + self.cfg.refresh_period,
            );
        }
    }

    /// Rebuild all volatile state from the simulated OOB metadata after a
    /// power loss (callable any time; the scan is idempotent).
    ///
    /// Phases: (1) resolve open refresh-adjustment intents per wordline —
    /// a recorded pulse is rolled forward to committed, an unrecorded one
    /// leaves the wordline conventionally coded, and kept pages of pulsed
    /// wordlines are queued for a conservative scrub (their verification
    /// may not have happened); (2) rebuild the L2P map from page records,
    /// newest sequence number winning; (3) reconstruct the block table
    /// from programmed/bad/committed-mask state; (4) re-pool the
    /// allocator; (5) reschedule refresh for every closed block; (6) run
    /// the scrub relocations. Power-lost status clears; read-only status
    /// is re-derived from the persistent bad/spare state.
    pub fn recover(&mut self, now: SimTime) -> RecoveryReport {
        self.in_recovery = true;
        let mut report = RecoveryReport::default();

        // Phase 1: wordline-atomicity resolution.
        let mut scrub_pages: Vec<PageAddr> = Vec::new();
        for block in self.oob.open_intents() {
            let intent = self
                .oob
                .intent(block)
                .expect("listed as an open intent")
                .to_vec();
            for (wl, mask) in intent {
                if self.oob.merged_mask(block, wl) == mask {
                    if !self.oob.is_committed(block, wl) {
                        self.oob.commit_merge(block, wl);
                        report.rolled_forward += 1;
                    }
                    for bit in 0..self.geometry.bits_per_cell as u8 {
                        if mask & (1 << bit) != 0 {
                            scrub_pages.push(self.block_page(block, wl, bit));
                        }
                    }
                }
                // No merge record: the pulse never landed; the wordline
                // keeps its conventional coding.
            }
            self.oob.clear_intent(block);
        }

        // Phase 2: L2P rebuild, newest sequence number wins.
        let mut records: Vec<(u64, u64, PageAddr)> = self
            .oob
            .data_records()
            .map(|(page, lpn, seq)| (seq, lpn, page))
            .collect();
        records.sort_unstable();
        let mut map = PageMap::new(self.cfg.exported_pages(), self.geometry.total_pages());
        for (_, lpn, page) in records {
            map.map(Lpn(lpn), page);
        }
        report.rebuilt_mappings = map.mapped_count();

        // Phase 3: block table reconstruction.
        let full = self.geometry.pages_per_block();
        let zero_masks = vec![0u8; self.geometry.wordlines_per_block as usize];
        let mut blocks = BlockTable::new(self.geometry);
        for i in 0..self.geometry.total_blocks() {
            let b = BlockAddr(i);
            let erases = self.oob.erase_count(b);
            if self.oob.is_bad(b) {
                blocks.restore(b, BlockState::Bad, 0, 0, erases, 0, &zero_masks);
                continue;
            }
            let programmed = self.oob.programmed_count(b);
            let valid = (0..full)
                .filter(|&off| map.is_valid(b.page(&self.geometry, off)))
                .count() as u32;
            if programmed == 0 {
                blocks.restore(b, BlockState::Free, 0, 0, erases, 0, &zero_masks);
            } else if programmed < full {
                blocks.restore(
                    b,
                    BlockState::Open,
                    programmed,
                    valid,
                    erases,
                    0,
                    &zero_masks,
                );
                report.open_blocks += 1;
            } else {
                let masks = self.oob.committed_masks(b);
                let state = if masks.iter().any(|&m| m != 0) {
                    BlockState::Ida
                } else {
                    BlockState::Closed
                };
                blocks.restore(b, state, full, valid, erases, now, &masks);
            }
        }
        report.bad_blocks = blocks.bad_blocks();

        // Phase 4: allocator pools from the recovered states.
        let oob = &self.oob;
        let alloc = Allocator::rebuild(self.geometry, |b| match blocks.state(b) {
            BlockState::Free if oob.is_spare(b) => RecoveredPool::Spare,
            BlockState::Free => RecoveredPool::Free,
            BlockState::Open => RecoveredPool::Active,
            _ => RecoveredPool::None,
        });

        // Phase 5: every surviving closed block is rescheduled for refresh
        // one full period out (its retention clock restarts conservatively
        // from the recovery point).
        let mut refresh_q = RefreshQueue::new();
        for i in 0..self.geometry.total_blocks() {
            let b = BlockAddr(i);
            if matches!(blocks.state(b), BlockState::Closed | BlockState::Ida) {
                refresh_q.schedule(b, blocks.closed_at(b), now + self.cfg.refresh_period);
            }
        }

        self.map = map;
        self.blocks = blocks;
        self.alloc = alloc;
        self.refresh_q = refresh_q;
        self.refresh_target = None;
        self.power_lost = false;
        self.read_only = None;
        if self.blocks.bad_blocks() > 0 && self.alloc.total_spares() == 0 {
            // Re-derive degradation: retirements exist and no spare could
            // cover the next one.
            self.enter_read_only(now, "spare pool exhausted");
        }

        // Phase 6: conservative scrub of kept pages whose post-adjustment
        // verification was interrupted. The flash ops are not returned —
        // the simulator charges recovery as a single stall.
        let mut scrub_ops = Vec::new();
        for page in scrub_pages {
            if self.map.is_valid(page) && self.relocate_page(page, now, None, &mut scrub_ops) {
                report.scrubbed += 1;
            }
        }

        self.stats.recoveries += 1;
        self.trace.emit_with(|| TraceEvent::RecoveryScan {
            t: now,
            rebuilt_mappings: report.rebuilt_mappings,
            rolled_forward: report.rolled_forward,
            scrubbed: report.scrubbed,
            bad_blocks: report.bad_blocks,
        });
        self.in_recovery = false;
        report
    }

    /// Cross-check the volatile structures against each other and the OOB
    /// metadata. Used by recovery tests; `Err` carries the first violated
    /// invariant.
    pub fn check_consistency(&self) -> Result<(), String> {
        for l in 0..self.map.logical_pages() {
            if let Some(p) = self.map.translate(Lpn(l)) {
                if self.map.owner(p) != Some(Lpn(l)) {
                    return Err(format!("l2p/p2l mismatch at lpn {l}"));
                }
            }
        }
        let full = self.geometry.pages_per_block();
        for i in 0..self.geometry.total_blocks() {
            let b = BlockAddr(i);
            let valid = (0..full)
                .filter(|&off| self.map.is_valid(b.page(&self.geometry, off)))
                .count() as u32;
            if valid != self.blocks.valid_pages(b) {
                return Err(format!(
                    "block {b}: table counts {} valid pages, map counts {valid}",
                    self.blocks.valid_pages(b)
                ));
            }
            let state = self.blocks.state(b);
            for wl in 0..self.geometry.wordlines_per_block {
                let merged = self.oob.merged_mask(b, wl);
                let committed = self.oob.is_committed(b, wl);
                if committed && merged == 0 {
                    return Err(format!(
                        "block {b} wl {wl}: committed without a merge record"
                    ));
                }
                if merged != 0 && !committed && self.oob.intent(b).is_none() {
                    return Err(format!(
                        "block {b} wl {wl}: half-merged (pulse landed, never \
                         committed, no open intent)"
                    ));
                }
                let authoritative = if committed { merged } else { 0 };
                if authoritative != 0 && !matches!(state, BlockState::Ida | BlockState::Bad) {
                    return Err(format!(
                        "block {b} wl {wl}: committed merge on a {state:?} block"
                    ));
                }
                if state == BlockState::Ida && self.blocks.wl_keep_mask(b, wl) != authoritative {
                    return Err(format!(
                        "block {b} wl {wl}: volatile keep-mask {} != committed mask \
                         {authoritative}",
                        self.blocks.wl_keep_mask(b, wl)
                    ));
                }
            }
        }
        Ok(())
    }

    fn wl_valid_masks(&self, block: BlockAddr) -> Vec<u8> {
        (0..self.geometry.wordlines_per_block)
            .map(|w| {
                let wl = block.wordline(&self.geometry, w);
                let mut mask = 0u8;
                for b in 0..self.geometry.bits_per_cell as u8 {
                    let page = wl.page(&self.geometry, PageType::from_bit_index(b));
                    if self.map.is_valid(page) {
                        mask |= 1 << b;
                    }
                }
                mask
            })
            .collect()
    }

    fn block_page(&self, block: BlockAddr, wl: u32, bit: u8) -> PageAddr {
        block
            .wordline(&self.geometry, wl)
            .page(&self.geometry, PageType::from_bit_index(bit))
    }

    fn read_op(&self, page: PageAddr, priority: Priority) -> FlashOp {
        FlashOp {
            kind: FlashOpKind::Read {
                senses: self.senses_for(page),
            },
            die: page.die(&self.geometry),
            channel: page.channel(&self.geometry),
            block: page.block(&self.geometry),
            page: Some(page),
            priority,
            origin: self.op_origin,
        }
    }

    fn program_op(&self, page: PageAddr, priority: Priority) -> FlashOp {
        FlashOp {
            kind: FlashOpKind::Program,
            die: page.die(&self.geometry),
            channel: page.channel(&self.geometry),
            block: page.block(&self.geometry),
            page: Some(page),
            priority,
            origin: self.op_origin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl_with(mode: RefreshMode) -> Ftl {
        Ftl::new(FtlConfig {
            geometry: Geometry::tiny(),
            refresh_mode: mode,
            adjust_error_rate: 0.0,
            refresh_period: 1_000_000,
            ..FtlConfig::default()
        })
    }

    fn faulty_ftl(faults: FaultConfig, spares: u32) -> Ftl {
        Ftl::new(FtlConfig {
            geometry: Geometry::tiny(),
            adjust_error_rate: 0.0,
            refresh_period: 1_000_000,
            spare_blocks_per_plane: spares,
            faults,
            ..FtlConfig::default()
        })
    }

    #[test]
    fn write_then_read_translates() {
        let mut ftl = ftl_with(RefreshMode::Baseline);
        let ops = ftl.write(Lpn(7), 0).unwrap();
        assert!(matches!(ops.last().unwrap().kind, FlashOpKind::Program));
        let read = ftl.read(Lpn(7)).unwrap();
        assert_eq!(read.senses, 1); // first allocation lands on an LSB page
        assert_eq!(read.scenario, ReadScenario::Lsb);
    }

    #[test]
    fn unwritten_lpn_reads_none() {
        let mut ftl = ftl_with(RefreshMode::Baseline);
        assert!(ftl.read(Lpn(3)).is_none());
    }

    #[test]
    fn overwrite_invalidates_previous_page() {
        let mut ftl = ftl_with(RefreshMode::Baseline);
        ftl.write(Lpn(1), 0).unwrap();
        let first = ftl.read(Lpn(1)).unwrap().page;
        ftl.write(Lpn(1), 1).unwrap();
        let second = ftl.read(Lpn(1)).unwrap().page;
        assert_ne!(first, second);
        assert!(!ftl.is_valid(first));
    }

    #[test]
    fn csb_read_with_invalid_lsb_is_classified() {
        let g = Geometry::tiny();
        let mut ftl = ftl_with(RefreshMode::Baseline);
        // Fill one wordline per plane: lpns 0.. land striped; write enough
        // that WL0 of some block holds LSB/CSB/MSB = lpn (0,2,4) etc.
        // Simpler: write lpns until some lpn sits on a CSB page.
        let mut csb_lpn = None;
        for i in 0..32 {
            ftl.write(Lpn(i), 0).unwrap();
            if ftl.read(Lpn(i)).unwrap().page_type == PageType::Csb {
                csb_lpn = Some(Lpn(i));
                break;
            }
        }
        let csb_lpn = csb_lpn.expect("some write landed on a CSB page");
        let csb_page = ftl.read(csb_lpn).unwrap().page;
        assert_eq!(
            ftl.read(csb_lpn).unwrap().scenario,
            ReadScenario::CsbLowerValid
        );
        // Invalidate the LSB of the same wordline by overwriting its owner.
        let wl = csb_page.wordline(&g);
        let lsb_page = wl.page(&g, PageType::Lsb);
        let owner = (0..32)
            .map(Lpn)
            .find(|&l| ftl.read(l).map(|r| r.page) == Some(lsb_page))
            .expect("lsb owner");
        ftl.write(owner, 1).unwrap();
        assert_eq!(
            ftl.read(csb_lpn).unwrap().scenario,
            ReadScenario::CsbLowerInvalid
        );
    }

    #[test]
    fn ida_refresh_converts_block_and_speeds_reads() {
        let g = Geometry::tiny();
        let mut ftl = ftl_with(RefreshMode::Ida);
        let pages_per_block = g.pages_per_block() as u64;
        // Fill a whole stripe so at least one block closes.
        let to_write = pages_per_block * g.total_planes() as u64;
        for i in 0..to_write {
            ftl.write(Lpn(i), 0).unwrap();
        }
        // Find an MSB lpn and invalidate its wordline's LSB + CSB.
        let msb_lpn = (0..to_write)
            .map(Lpn)
            .find(|&l| ftl.read(l).map(|r| r.page_type) == Some(PageType::Msb))
            .unwrap();
        let before = ftl.read(msb_lpn).unwrap();
        assert_eq!(before.senses, 4);
        let wl = before.page.wordline(&g);
        for ty in [PageType::Lsb, PageType::Csb] {
            let p = wl.page(&g, ty);
            if let Some(owner) = (0..to_write)
                .map(Lpn)
                .find(|&l| ftl.read(l).map(|r| r.page) == Some(p))
            {
                ftl.write(owner, 1).unwrap();
            }
        }
        // Refresh the block directly.
        let block = before.page.block(&g);
        let mut ops = Vec::new();
        ftl.refresh_block(block, 10, &mut ops);
        assert_eq!(ftl.blocks().state(block), BlockState::Ida);
        let after = ftl.read(msb_lpn).unwrap();
        assert_eq!(after.scenario, ReadScenario::IdaCoded);
        assert_eq!(after.senses, 1, "case-4 wordline reads MSB in one sense");
        assert!(ops
            .iter()
            .any(|o| matches!(o.kind, FlashOpKind::VoltageAdjust)));
        // The intent journal was opened and closed around the adjustment.
        assert!(ftl.oob().open_intents().is_empty());
        ftl.check_consistency().expect("consistent after refresh");
    }

    #[test]
    fn baseline_refresh_empties_the_block() {
        let g = Geometry::tiny();
        let mut ftl = ftl_with(RefreshMode::Baseline);
        let to_write = g.pages_per_block() as u64 * g.total_planes() as u64;
        for i in 0..to_write {
            ftl.write(Lpn(i), 0).unwrap();
        }
        let block = ftl.read(Lpn(0)).unwrap().page.block(&g);
        let mut ops = Vec::new();
        ftl.refresh_block(block, 10, &mut ops);
        assert_eq!(ftl.blocks().valid_pages(block), 0);
        // Data still readable from its new location.
        assert!(ftl.read(Lpn(0)).is_some());
        assert_ne!(ftl.read(Lpn(0)).unwrap().page.block(&g), block);
    }

    #[test]
    fn gc_reclaims_space_under_pressure() {
        let mut ftl = ftl_with(RefreshMode::Baseline);
        let logical = ftl.exported_pages();
        // Write the full logical space twice; GC must kick in.
        for round in 0..2u64 {
            for i in 0..logical {
                ftl.write(Lpn(i), round).unwrap();
            }
        }
        assert!(ftl.stats().gc_runs > 0);
        assert!(ftl.stats().erases > 0);
        // All data still readable.
        assert!(ftl.read(Lpn(0)).is_some());
        assert!(ftl.read(Lpn(logical - 1)).is_some());
    }

    #[test]
    fn refresh_due_queue_fires_and_reschedules_ida_blocks() {
        let g = Geometry::tiny();
        let mut ftl = ftl_with(RefreshMode::Ida);
        let to_write = g.pages_per_block() as u64 * g.total_planes() as u64;
        for i in 0..to_write {
            ftl.write(Lpn(i), 0).unwrap();
        }
        // Invalidate some pages so IDA applies, then run due refreshes.
        for i in (0..to_write).step_by(3) {
            ftl.write(Lpn(i), 100).unwrap();
        }
        let due = ftl.next_refresh_due().expect("blocks closed");
        let ops = ftl.run_due_refreshes(due);
        assert!(!ops.is_empty());
        assert!(ftl.stats().ida_conversions > 0);
        // The IDA block was rescheduled for forced reclaim.
        assert!(ftl.next_refresh_due().is_some());
    }

    #[test]
    fn trim_invalidates_without_flash_ops() {
        let mut ftl = ftl_with(RefreshMode::Baseline);
        ftl.write(Lpn(5), 0).unwrap();
        let page = ftl.read(Lpn(5)).unwrap().page;
        ftl.trim(Lpn(5));
        assert!(ftl.read(Lpn(5)).is_none());
        assert!(!ftl.is_valid(page));
    }

    #[test]
    fn program_failures_redirect_until_the_cap_forces_success() {
        let mut ftl = faulty_ftl(
            FaultConfig {
                program_fail_prob: 1.0,
                seed: 3,
                ..FaultConfig::none()
            },
            0,
        );
        // With a certain-failure injector the write burns exactly
        // MAX_REDIRECTS pages before the cap forces it through.
        let ops = ftl.write(Lpn(0), 0).unwrap();
        assert_eq!(ftl.stats().injected_program_fails, u64::from(MAX_REDIRECTS));
        assert_eq!(ftl.stats().write_redirects, 1);
        let programs = ops
            .iter()
            .filter(|o| matches!(o.kind, FlashOpKind::Program))
            .count() as u32;
        assert_eq!(programs, MAX_REDIRECTS + 1);
        assert!(ftl.read(Lpn(0)).is_some());
        ftl.check_consistency().expect("consistent after redirects");
    }

    #[test]
    fn erase_failures_retire_blocks_and_drain_the_spares() {
        let mut ftl = faulty_ftl(
            FaultConfig {
                erase_fail_prob: 1.0,
                seed: 9,
                ..FaultConfig::none()
            },
            2,
        );
        // Every GC erase fails: blocks retire, spares promote, and once
        // the pools drain the device degrades to read-only.
        let logical = ftl.exported_pages();
        let mut failure = None;
        'outer: for round in 0..6u64 {
            for i in 0..logical {
                if let Err(e) = ftl.write(Lpn(i), round) {
                    failure = Some(e);
                    break 'outer;
                }
            }
        }
        assert!(
            matches!(failure, Some(FtlError::ReadOnly { .. })),
            "expected read-only degradation, got {failure:?}"
        );
        assert!(ftl.stats().retired_blocks > 0);
        assert_eq!(ftl.blocks().bad_blocks() as u64, ftl.stats().retired_blocks);
        // Degradation fires when the victim plane's pool drains; other
        // planes may still hold spares.
        assert!(
            ftl.total_spares() < 2 * ftl.config().geometry.total_planes() as u64,
            "some spares were promoted"
        );
        assert!(ftl.read_only_reason().is_some());
        // Reads still work on the degraded device.
        assert!(ftl.read(Lpn(0)).is_some());
        // Further writes are rejected and counted.
        assert!(ftl.write(Lpn(0), 99).is_err());
        assert!(ftl.stats().rejected_writes > 0);
    }

    #[test]
    fn power_loss_recovery_rebuilds_acked_state() {
        let mut ftl = faulty_ftl(
            FaultConfig {
                power_loss_ops: vec![40],
                seed: 1,
                ..FaultConfig::none()
            },
            0,
        );
        let mut acked = Vec::new();
        let mut crashed = false;
        for i in 0..200u64 {
            match ftl.write(Lpn(i), i) {
                Ok(_) => acked.push(Lpn(i)),
                Err(FtlError::PowerLoss) => {
                    crashed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(crashed);
        assert!(ftl.power_lost());
        assert_eq!(acked.len(), 40, "ops 0..39 committed; op 40 was lost");
        let report = ftl.recover(1_000);
        assert!(!ftl.power_lost());
        assert_eq!(report.rebuilt_mappings, acked.len() as u64);
        for lpn in &acked {
            assert!(ftl.read(*lpn).is_some(), "acked {lpn} must survive");
        }
        ftl.check_consistency().expect("consistent after recovery");
        assert_eq!(ftl.stats().recoveries, 1);
        // The device accepts writes again.
        assert!(ftl.write(Lpn(500), 2_000).is_ok());
    }
}
