//! The FTL facade: host I/O, garbage collection and data refresh.

use crate::alloc::Allocator;
use crate::block::{BlockState, BlockTable};
use crate::config::FtlConfig;
use crate::gc;
use crate::map::{Lpn, PageMap};
use crate::ops::{FlashOp, FlashOpKind, Priority, ReadOp, ReadScenario};
use crate::refresh::RefreshQueue;
use crate::stats::FtlStats;
use ida_core::merge::MergePlan;
use ida_core::refresh::{RefreshMode, RefreshPlanner};
use ida_flash::addr::{BlockAddr, PageAddr, PageType};
use ida_flash::geometry::Geometry;
use ida_flash::interference::InterferenceModel;
use ida_flash::timing::SimTime;
use ida_obs::trace::{SinkHandle, TraceEvent};

/// The flash translation layer.
///
/// Owns all logical SSD state and translates host operations into
/// [`FlashOp`] sequences for the simulator. See the crate docs for an
/// example.
#[derive(Debug)]
pub struct Ftl {
    cfg: FtlConfig,
    geometry: Geometry,
    /// Sense count per bit under conventional coding.
    sense_conventional: Vec<u32>,
    /// `sense_merged[keep_mask][bit]` — sense count under the merged coding
    /// for `keep_mask`, `None` when the bit is unreadable.
    sense_merged: Vec<Vec<Option<u32>>>,
    map: PageMap,
    blocks: BlockTable,
    alloc: Allocator,
    refresh_q: RefreshQueue,
    planner: RefreshPlanner,
    stats: FtlStats,
    /// The block currently being refreshed, excluded from GC victim
    /// selection so its pages are not relocated out from under the plan.
    refresh_target: Option<BlockAddr>,
    /// Trace sink for GC/refresh/IDA events (null — free — by default).
    trace: SinkHandle,
}

impl Ftl {
    /// Build an FTL over an empty (all-erased) flash array.
    pub fn new(cfg: FtlConfig) -> Self {
        cfg.geometry.validate();
        let bits = cfg.geometry.bits_per_cell as u8;
        let coding = cfg.coding.scheme(bits);
        let sense_conventional = (0..bits).map(|b| coding.sense_count(b)).collect();
        let sense_merged = (0..(1u16 << bits))
            .map(|mask| {
                let plan = MergePlan::compute(&coding, mask as u8);
                (0..bits)
                    .map(|b| {
                        plan.merged()
                            .is_readable(b)
                            .then(|| plan.merged().sense_count(b))
                    })
                    .collect()
            })
            .collect();
        let planner = RefreshPlanner::new(
            bits,
            cfg.refresh_mode,
            InterferenceModel::with_seed(cfg.adjust_error_rate, cfg.seed),
        );
        Ftl {
            map: PageMap::new(cfg.exported_pages(), cfg.geometry.total_pages()),
            blocks: BlockTable::new(cfg.geometry),
            alloc: Allocator::new(cfg.geometry),
            refresh_q: RefreshQueue::new(),
            planner,
            geometry: cfg.geometry,
            sense_conventional,
            sense_merged,
            stats: FtlStats::default(),
            refresh_target: None,
            trace: SinkHandle::null(),
            cfg,
        }
    }

    /// Attach a trace sink. The simulator shares its own handle so FTL
    /// events (GC, refresh, IDA conversion) interleave with flash events
    /// in one stream.
    pub fn set_trace(&mut self, trace: SinkHandle) {
        self.trace = trace;
    }

    /// The configuration in force.
    pub fn config(&self) -> &FtlConfig {
        &self.cfg
    }

    /// Change the refresh period for blocks scheduled from now on
    /// (experiments size the period relative to the trace span).
    pub fn set_refresh_period(&mut self, period: SimTime) {
        self.cfg.refresh_period = period;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &FtlStats {
        &self.stats
    }

    /// The block status table (read-only view for metrics/tests).
    pub fn blocks(&self) -> &BlockTable {
        &self.blocks
    }

    /// Number of logical pages the host may address.
    pub fn exported_pages(&self) -> u64 {
        self.map.logical_pages()
    }

    /// Whether physical page `p` currently holds valid data.
    pub fn is_valid(&self, p: PageAddr) -> bool {
        self.map.is_valid(p)
    }

    /// Sensing operations a read of physical page `p` needs under the
    /// wordline's current coding.
    pub fn senses_for(&self, p: PageAddr) -> u32 {
        let bit = p.page_type(&self.geometry).bit_index();
        let block = p.block(&self.geometry);
        if self.blocks.state(block) == BlockState::Ida {
            let wl = p.wordline(&self.geometry).offset_in_block(&self.geometry);
            let mask = self.blocks.wl_keep_mask(block, wl);
            if mask != 0 {
                return self.sense_merged[mask as usize][bit as usize]
                    .expect("valid page of an adjusted wordline must be readable");
            }
        }
        self.sense_conventional[bit as usize]
    }

    /// Translate and classify a host read of `lpn`. Returns `None` if the
    /// LPN was never written (the host reads zeros; no flash work).
    pub fn read(&mut self, lpn: Lpn) -> Option<ReadOp> {
        let page = self.map.translate(lpn)?;
        self.stats.host_reads += 1;
        let ty = page.page_type(&self.geometry);
        let senses = self.senses_for(page);
        let scenario = self.classify_read(page, ty);
        if scenario == ReadScenario::IdaCoded {
            self.stats.ida_reads += 1;
        }
        Some(ReadOp {
            page,
            page_type: ty,
            senses,
            scenario,
            die: page.die(&self.geometry),
            channel: page.channel(&self.geometry),
        })
    }

    fn classify_read(&self, page: PageAddr, ty: PageType) -> ReadScenario {
        let block = page.block(&self.geometry);
        let wl = page.wordline(&self.geometry);
        if self.blocks.state(block) == BlockState::Ida
            && self
                .blocks
                .wl_keep_mask(block, wl.offset_in_block(&self.geometry))
                != 0
        {
            return ReadScenario::IdaCoded;
        }
        let bit = ty.bit_index();
        if bit == 0 {
            return ReadScenario::Lsb;
        }
        let lower_all_valid = (0..bit).all(|b| {
            self.map
                .is_valid(wl.page(&self.geometry, PageType::from_bit_index(b)))
        });
        match (bit, lower_all_valid) {
            (1, true) => ReadScenario::CsbLowerValid,
            (1, false) => ReadScenario::CsbLowerInvalid,
            (_, true) => ReadScenario::MsbLowerValid,
            (_, false) => ReadScenario::MsbLowerInvalid,
        }
    }

    /// Serve a host page write: allocates a physical page in CWDP order,
    /// supersedes any previous version, and returns the flash ops to
    /// execute (GC traffic first if the free pool ran low, then the
    /// program itself).
    ///
    /// # Panics
    ///
    /// Panics if the device is genuinely out of space even after GC, which
    /// cannot happen while the host stays within the exported capacity.
    pub fn write(&mut self, lpn: Lpn, now: SimTime) -> Vec<FlashOp> {
        let mut ops = Vec::new();
        self.collect_if_needed(now, &mut ops);
        let page = match self.alloc.allocate(&mut self.blocks, now) {
            Some(p) => p,
            None => {
                self.force_collect(now, &mut ops);
                self.alloc
                    .allocate(&mut self.blocks, now)
                    .expect("device out of space: host exceeded exported capacity")
            }
        };
        if let Some(old) = self.map.map(lpn, page) {
            self.blocks.invalidate_page(old.block(&self.geometry));
        }
        self.after_allocation(page, now);
        self.stats.host_writes += 1;
        ops.push(self.program_op(page, Priority::HostWrite));
        ops
    }

    /// Host trim/discard of `lpn`.
    pub fn trim(&mut self, lpn: Lpn) {
        if let Some(old) = self.map.unmap(lpn) {
            self.blocks.invalidate_page(old.block(&self.geometry));
        }
    }

    /// The earliest pending refresh due-time, if any (may be stale; calling
    /// [`Ftl::run_due_refreshes`] at that time resolves staleness).
    pub fn next_refresh_due(&self) -> Option<SimTime> {
        self.refresh_q.next_due()
    }

    /// Execute every refresh due at `now`, returning the flash ops.
    pub fn run_due_refreshes(&mut self, now: SimTime) -> Vec<FlashOp> {
        let mut ops = Vec::new();
        loop {
            let blocks = &self.blocks;
            let due = self.refresh_q.pop_due(now, |b, snap| {
                matches!(blocks.state(b), BlockState::Closed | BlockState::Ida)
                    && blocks.closed_at(b) == snap
            });
            match due {
                Some(block) => self.refresh_block(block, now, &mut ops),
                None => break,
            }
        }
        ops
    }

    /// Refresh one block immediately (also used by tests and experiments
    /// that drive refresh manually).
    pub fn refresh_block(&mut self, block: BlockAddr, now: SimTime, ops: &mut Vec<FlashOp>) {
        self.refresh_target = Some(block);
        self.refresh_block_inner(block, now, ops);
        self.refresh_target = None;
    }

    fn refresh_block_inner(&mut self, block: BlockAddr, now: SimTime, ops: &mut Vec<FlashOp>) {
        self.stats.refreshes += 1;
        let moves_before = self.stats.refresh_moves;
        let state = self.blocks.state(block);
        let wl_masks = self.wl_valid_masks(block);

        // IDA blocks are reclaimed on their next cycle: baseline move-all,
        // regardless of the configured mode (Section III-C).
        let plan = if state == BlockState::Ida || self.planner.mode() == RefreshMode::Baseline {
            let mut baseline = RefreshPlanner::new(
                self.geometry.bits_per_cell as u8,
                RefreshMode::Baseline,
                InterferenceModel::new(0.0),
            );
            baseline.plan_block(&wl_masks)
        } else {
            let plan = self.planner.plan_block(&wl_masks);
            self.stats.refresh_overhead.record(&plan);
            plan
        };

        // Step 1: read every valid page (and charge its current coding).
        for &(wl, bit) in &plan.initial_reads {
            let page = self.block_page(block, wl, bit);
            ops.push(self.read_op(page, Priority::Background));
        }
        // Step 3: migrate non-beneficial pages (plain CWDP placement) and
        // evicted pages (placed on same-type — typically fast LSB — slots
        // of new blocks, Section III-C).
        for &(wl, bit) in &plan.moves {
            let page = self.block_page(block, wl, bit);
            self.relocate_page(page, now, None, ops);
            self.stats.refresh_moves += 1;
        }
        for &(wl, bit) in &plan.evictions {
            let page = self.block_page(block, wl, bit);
            let prefer = self.cfg.lsb_placement.then_some(bit);
            self.relocate_page(page, now, prefer, ops);
            self.stats.refresh_moves += 1;
        }
        // Step 4: voltage-adjust the selected wordlines.
        if !plan.adjusted_wordlines.is_empty() {
            let masks: Vec<(u32, u8)> = plan
                .adjusted_wordlines
                .iter()
                .copied()
                .zip(plan.keep_masks.iter().copied())
                .collect();
            self.blocks.mark_ida(block, &masks, now);
            self.stats.ida_conversions += 1;
            self.stats.voltage_adjusts += plan.adjusted_wordlines.len() as u64;
            self.trace.emit_with(|| TraceEvent::IdaConversion {
                t: now,
                block: block.0 as u64,
                wordlines: plan.adjusted_wordlines.len() as u32,
            });
            for _ in &plan.adjusted_wordlines {
                ops.push(FlashOp {
                    kind: FlashOpKind::VoltageAdjust,
                    die: block.die(&self.geometry),
                    channel: block.channel(&self.geometry),
                    block,
                    page: None,
                    priority: Priority::Background,
                });
            }
            // Step 5: verification reads under the merged coding.
            for &(wl, bit) in &plan.verify_reads {
                let page = self.block_page(block, wl, bit);
                ops.push(self.read_op(page, Priority::Background));
            }
            // Step 8: corrupted pages move to the new block after all.
            for &(wl, bit) in &plan.error_writes {
                let page = self.block_page(block, wl, bit);
                self.relocate_page(page, now, None, ops);
            }
            // Schedule the forced reclaim of the new IDA block.
            self.refresh_q
                .schedule(block, now, now + self.cfg.refresh_period);
        }
        // A baseline-refreshed block is left fully invalid for GC to erase.
        self.trace.emit_with(|| TraceEvent::RefreshBlock {
            t: now,
            block: block.0 as u64,
            moves: (self.stats.refresh_moves - moves_before) as u32,
            adjusted_wordlines: plan.adjusted_wordlines.len() as u32,
            ida: !plan.adjusted_wordlines.is_empty(),
        });
    }

    /// Garbage-collect `plane`-local space until the high watermark is
    /// restored (or no victims remain). Returns whether anything happened.
    pub fn collect_plane(
        &mut self,
        plane: ida_flash::addr::PlaneAddr,
        now: SimTime,
        ops: &mut Vec<FlashOp>,
    ) -> bool {
        let mut progressed = false;
        while self.alloc.free_count(plane) < self.cfg.gc_high_watermark {
            let Some(victim) = gc::select_victim(&self.blocks, plane, self.refresh_target) else {
                break;
            };
            self.collect_victim(victim, now, ops);
            progressed = true;
        }
        progressed
    }

    /// Reclaim the globally cheapest victim (fewest valid pages; an empty
    /// carcass whenever one exists). Returns false when nothing is
    /// reclaimable.
    fn reclaim_cheapest(&mut self, now: SimTime, ops: &mut Vec<FlashOp>) -> bool {
        let exclude = self.refresh_target;
        let full = self.geometry.pages_per_block();
        let victim = self
            .blocks
            .reclaimable_blocks()
            // Fully valid blocks yield no net space (see gc::select_victim).
            .filter(|&(b, valid, _)| valid < full && Some(b) != exclude)
            .min_by_key(|&(_, valid, erases)| (valid, erases))
            .map(|(b, _, _)| b);
        match victim {
            Some(v) => {
                self.collect_victim(v, now, ops);
                true
            }
            None => false,
        }
    }

    /// Relocate a victim's valid pages within its plane and erase it.
    fn collect_victim(&mut self, victim: BlockAddr, now: SimTime, ops: &mut Vec<FlashOp>) {
        self.stats.gc_runs += 1;
        let plane = victim.plane(&self.geometry);
        let mut copies = 0u32;
        for off in 0..self.geometry.pages_per_block() {
            let page = victim.page(&self.geometry, off);
            if self.map.is_valid(page) {
                ops.push(self.read_op(page, Priority::Background));
                self.relocate_for_gc(page, plane, now, ops);
                self.stats.gc_copies += 1;
                copies += 1;
            }
        }
        self.trace.emit_with(|| TraceEvent::GcRun {
            t: now,
            block: victim.0 as u64,
            copies,
        });
        self.blocks.erase(victim);
        self.stats.erases += 1;
        self.alloc.push_free(victim);
        ops.push(FlashOp {
            kind: FlashOpKind::Erase,
            die: victim.die(&self.geometry),
            channel: victim.channel(&self.geometry),
            block: victim,
            page: None,
            priority: Priority::Background,
        });
    }

    fn collect_if_needed(&mut self, now: SimTime, ops: &mut Vec<FlashOp>) {
        let (plane, free) = self.alloc.tightest_plane();
        if free < self.cfg.gc_low_watermark {
            self.collect_plane(plane, now, ops);
        }
    }

    fn force_collect(&mut self, now: SimTime, ops: &mut Vec<FlashOp>) {
        let planes = self.geometry.total_planes();
        for p in 0..planes {
            self.collect_plane(ida_flash::addr::PlaneAddr(p), now, ops);
        }
    }

    /// Move a valid page into a freshly allocated location, emitting the
    /// program op (the read is charged by the caller where appropriate).
    /// `prefer_bit` requests a destination slot of the given page type.
    fn relocate_page(
        &mut self,
        from: PageAddr,
        now: SimTime,
        prefer_bit: Option<u8>,
        ops: &mut Vec<FlashOp>,
    ) {
        self.relocate_page_inner(from, now, prefer_bit, ops);
    }

    fn relocate_page_inner(
        &mut self,
        from: PageAddr,
        now: SimTime,
        prefer_bit: Option<u8>,
        ops: &mut Vec<FlashOp>,
    ) {
        let mut dest = self.allocate_maybe_preferring(prefer_bit, now);
        // Long refresh chains can outrun the watermark GC that the host
        // write path performs; reclaim the globally cheapest victim (empty
        // carcasses first) until an allocation succeeds.
        let mut attempts = 0;
        while dest.is_none() {
            attempts += 1;
            assert!(
                attempts <= 64 && self.reclaim_cheapest(now, ops),
                "relocation starved after {attempts} GC attempts \
                 (free blocks: {}, pools: {:?})",
                self.alloc.total_free(),
                self.alloc.pool_snapshot()
            );
            dest = self.allocate_maybe_preferring(prefer_bit, now);
        }
        self.finish_relocation(from, dest.expect("just filled"), now, ops);
    }

    /// GC relocation: stays inside the victim's plane using the GC reserve
    /// (the erase about to happen repays it), so GC can never deadlock on
    /// its own space demand.
    fn relocate_for_gc(
        &mut self,
        from: PageAddr,
        plane: ida_flash::addr::PlaneAddr,
        now: SimTime,
        ops: &mut Vec<FlashOp>,
    ) {
        // Prefer spreading relocated pages across the device (otherwise a
        // nearly-full victim would eat the very pool its erase refills and
        // the watermark loop would make no net progress); the per-plane
        // reserve is the deadlock-free fallback of last resort.
        let dest = self
            .alloc
            .allocate(&mut self.blocks, now)
            .or_else(|| self.alloc.allocate_gc(plane, &mut self.blocks, now))
            .expect("GC reserve guarantees relocation space");
        self.finish_relocation(from, dest, now, ops);
    }

    fn finish_relocation(
        &mut self,
        from: PageAddr,
        dest: PageAddr,
        now: SimTime,
        ops: &mut Vec<FlashOp>,
    ) {
        let moved = self.map.relocate(from, dest);
        assert!(moved.is_some(), "relocation source {from} was invalid");
        self.blocks.invalidate_page(from.block(&self.geometry));
        self.after_allocation(dest, now);
        ops.push(self.program_op(dest, Priority::Background));
    }

    fn allocate_maybe_preferring(
        &mut self,
        prefer_bit: Option<u8>,
        now: SimTime,
    ) -> Option<PageAddr> {
        match prefer_bit {
            Some(bit) => self.alloc.allocate_preferring(bit, &mut self.blocks, now),
            None => self.alloc.allocate(&mut self.blocks, now),
        }
    }

    /// Post-allocation bookkeeping: schedule refresh when a block closes.
    fn after_allocation(&mut self, page: PageAddr, now: SimTime) {
        let block = page.block(&self.geometry);
        if self.blocks.state(block) == BlockState::Closed
            && page.offset_in_block(&self.geometry) == self.geometry.pages_per_block() - 1
        {
            self.refresh_q.schedule(
                block,
                self.blocks.closed_at(block),
                now + self.cfg.refresh_period,
            );
        }
    }

    fn wl_valid_masks(&self, block: BlockAddr) -> Vec<u8> {
        (0..self.geometry.wordlines_per_block)
            .map(|w| {
                let wl = block.wordline(&self.geometry, w);
                let mut mask = 0u8;
                for b in 0..self.geometry.bits_per_cell as u8 {
                    let page = wl.page(&self.geometry, PageType::from_bit_index(b));
                    if self.map.is_valid(page) {
                        mask |= 1 << b;
                    }
                }
                mask
            })
            .collect()
    }

    fn block_page(&self, block: BlockAddr, wl: u32, bit: u8) -> PageAddr {
        block
            .wordline(&self.geometry, wl)
            .page(&self.geometry, PageType::from_bit_index(bit))
    }

    fn read_op(&self, page: PageAddr, priority: Priority) -> FlashOp {
        FlashOp {
            kind: FlashOpKind::Read {
                senses: self.senses_for(page),
            },
            die: page.die(&self.geometry),
            channel: page.channel(&self.geometry),
            block: page.block(&self.geometry),
            page: Some(page),
            priority,
        }
    }

    fn program_op(&self, page: PageAddr, priority: Priority) -> FlashOp {
        FlashOp {
            kind: FlashOpKind::Program,
            die: page.die(&self.geometry),
            channel: page.channel(&self.geometry),
            block: page.block(&self.geometry),
            page: Some(page),
            priority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl_with(mode: RefreshMode) -> Ftl {
        Ftl::new(FtlConfig {
            geometry: Geometry::tiny(),
            refresh_mode: mode,
            adjust_error_rate: 0.0,
            refresh_period: 1_000_000,
            ..FtlConfig::default()
        })
    }

    #[test]
    fn write_then_read_translates() {
        let mut ftl = ftl_with(RefreshMode::Baseline);
        let ops = ftl.write(Lpn(7), 0);
        assert!(matches!(ops.last().unwrap().kind, FlashOpKind::Program));
        let read = ftl.read(Lpn(7)).unwrap();
        assert_eq!(read.senses, 1); // first allocation lands on an LSB page
        assert_eq!(read.scenario, ReadScenario::Lsb);
    }

    #[test]
    fn unwritten_lpn_reads_none() {
        let mut ftl = ftl_with(RefreshMode::Baseline);
        assert!(ftl.read(Lpn(3)).is_none());
    }

    #[test]
    fn overwrite_invalidates_previous_page() {
        let mut ftl = ftl_with(RefreshMode::Baseline);
        ftl.write(Lpn(1), 0);
        let first = ftl.read(Lpn(1)).unwrap().page;
        ftl.write(Lpn(1), 1);
        let second = ftl.read(Lpn(1)).unwrap().page;
        assert_ne!(first, second);
        assert!(!ftl.is_valid(first));
    }

    #[test]
    fn csb_read_with_invalid_lsb_is_classified() {
        let g = Geometry::tiny();
        let mut ftl = ftl_with(RefreshMode::Baseline);
        // Fill one wordline per plane: lpns 0.. land striped; write enough
        // that WL0 of some block holds LSB/CSB/MSB = lpn (0,2,4) etc.
        // Simpler: write lpns until some lpn sits on a CSB page.
        let mut csb_lpn = None;
        for i in 0..32 {
            ftl.write(Lpn(i), 0);
            if ftl.read(Lpn(i)).unwrap().page_type == PageType::Csb {
                csb_lpn = Some(Lpn(i));
                break;
            }
        }
        let csb_lpn = csb_lpn.expect("some write landed on a CSB page");
        let csb_page = ftl.read(csb_lpn).unwrap().page;
        assert_eq!(
            ftl.read(csb_lpn).unwrap().scenario,
            ReadScenario::CsbLowerValid
        );
        // Invalidate the LSB of the same wordline by overwriting its owner.
        let wl = csb_page.wordline(&g);
        let lsb_page = wl.page(&g, PageType::Lsb);
        let owner = (0..32)
            .map(Lpn)
            .find(|&l| ftl.read(l).map(|r| r.page) == Some(lsb_page))
            .expect("lsb owner");
        ftl.write(owner, 1);
        assert_eq!(
            ftl.read(csb_lpn).unwrap().scenario,
            ReadScenario::CsbLowerInvalid
        );
    }

    #[test]
    fn ida_refresh_converts_block_and_speeds_reads() {
        let g = Geometry::tiny();
        let mut ftl = ftl_with(RefreshMode::Ida);
        let pages_per_block = g.pages_per_block() as u64;
        // Fill a whole stripe so at least one block closes.
        let to_write = pages_per_block * g.total_planes() as u64;
        for i in 0..to_write {
            ftl.write(Lpn(i), 0);
        }
        // Find an MSB lpn and invalidate its wordline's LSB + CSB.
        let msb_lpn = (0..to_write)
            .map(Lpn)
            .find(|&l| ftl.read(l).map(|r| r.page_type) == Some(PageType::Msb))
            .unwrap();
        let before = ftl.read(msb_lpn).unwrap();
        assert_eq!(before.senses, 4);
        let wl = before.page.wordline(&g);
        for ty in [PageType::Lsb, PageType::Csb] {
            let p = wl.page(&g, ty);
            if let Some(owner) = (0..to_write)
                .map(Lpn)
                .find(|&l| ftl.read(l).map(|r| r.page) == Some(p))
            {
                ftl.write(owner, 1);
            }
        }
        // Refresh the block directly.
        let block = before.page.block(&g);
        let mut ops = Vec::new();
        ftl.refresh_block(block, 10, &mut ops);
        assert_eq!(ftl.blocks().state(block), BlockState::Ida);
        let after = ftl.read(msb_lpn).unwrap();
        assert_eq!(after.scenario, ReadScenario::IdaCoded);
        assert_eq!(after.senses, 1, "case-4 wordline reads MSB in one sense");
        assert!(ops
            .iter()
            .any(|o| matches!(o.kind, FlashOpKind::VoltageAdjust)));
    }

    #[test]
    fn baseline_refresh_empties_the_block() {
        let g = Geometry::tiny();
        let mut ftl = ftl_with(RefreshMode::Baseline);
        let to_write = g.pages_per_block() as u64 * g.total_planes() as u64;
        for i in 0..to_write {
            ftl.write(Lpn(i), 0);
        }
        let block = ftl.read(Lpn(0)).unwrap().page.block(&g);
        let mut ops = Vec::new();
        ftl.refresh_block(block, 10, &mut ops);
        assert_eq!(ftl.blocks().valid_pages(block), 0);
        // Data still readable from its new location.
        assert!(ftl.read(Lpn(0)).is_some());
        assert_ne!(ftl.read(Lpn(0)).unwrap().page.block(&g), block);
    }

    #[test]
    fn gc_reclaims_space_under_pressure() {
        let mut ftl = ftl_with(RefreshMode::Baseline);
        let logical = ftl.exported_pages();
        // Write the full logical space twice; GC must kick in.
        for round in 0..2u64 {
            for i in 0..logical {
                ftl.write(Lpn(i), round);
            }
        }
        assert!(ftl.stats().gc_runs > 0);
        assert!(ftl.stats().erases > 0);
        // All data still readable.
        assert!(ftl.read(Lpn(0)).is_some());
        assert!(ftl.read(Lpn(logical - 1)).is_some());
    }

    #[test]
    fn refresh_due_queue_fires_and_reschedules_ida_blocks() {
        let g = Geometry::tiny();
        let mut ftl = ftl_with(RefreshMode::Ida);
        let to_write = g.pages_per_block() as u64 * g.total_planes() as u64;
        for i in 0..to_write {
            ftl.write(Lpn(i), 0);
        }
        // Invalidate some pages so IDA applies, then run due refreshes.
        for i in (0..to_write).step_by(3) {
            ftl.write(Lpn(i), 100);
        }
        let due = ftl.next_refresh_due().expect("blocks closed");
        let ops = ftl.run_due_refreshes(due);
        assert!(!ops.is_empty());
        assert!(ftl.stats().ida_conversions > 0);
        // The IDA block was rescheduled for forced reclaim.
        assert!(ftl.next_refresh_due().is_some());
    }

    #[test]
    fn trim_invalidates_without_flash_ops() {
        let mut ftl = ftl_with(RefreshMode::Baseline);
        ftl.write(Lpn(5), 0);
        let page = ftl.read(Lpn(5)).unwrap().page;
        ftl.trim(Lpn(5));
        assert!(ftl.read(Lpn(5)).is_none());
        assert!(!ftl.is_valid(page));
    }
}
