//! The wordline case table (paper Table I) and the refresh-time action
//! policy derived from it.
//!
//! During the modified data refresh, each wordline of the target block is
//! classified by which of its pages are still valid, and one of three
//! actions is chosen:
//!
//! - **Nothing** — no valid pages (case 8);
//! - **MoveAll** — the top page is invalid (cases 5–7): IDA brings no or
//!   little benefit, so the valid pages migrate to the new block exactly as
//!   the original refresh would do;
//! - **Ida** — the top page is valid (cases 1–4): the lowest valid pages
//!   that would block a profitable merge are *evicted* (moved to the new
//!   block, like the LSB moves of cases 1 and 3), and the remaining pages
//!   stay behind under IDA coding with reduced sense counts.
//!
//! The generalized rule (any bits-per-cell): keep the contiguous suffix of
//! bits from `max(1, highest_invalid + 1)` up to the top bit; evict valid
//! bits below it. For TLC this reproduces Table I exactly; for QLC it
//! reproduces Figure 6.

/// One of the paper's eight TLC wordline cases (Table I), generalized to a
/// validity bitmask. Constructed via [`WlCase::classify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WlCase {
    bits_per_cell: u8,
    valid_mask: u8,
}

/// The refresh-time action for one wordline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WlAction {
    /// No valid pages — nothing to do (Table I case 8).
    Nothing,
    /// Move all valid pages (bit indices, ascending) to the new block, as
    /// the original refresh does (Table I cases 5–7).
    MoveAll {
        /// Valid page bit indices to migrate.
        pages: Vec<u8>,
    },
    /// Apply IDA coding: evict `move_out` (valid pages relocated to the new
    /// block) and keep `keep` behind under the merged coding (Table I
    /// cases 1–4).
    Ida {
        /// Valid page bit indices evicted to the new block (e.g. the LSB
        /// moves of cases 1 and 3).
        move_out: Vec<u8>,
        /// Page bit indices remaining in the wordline under IDA coding.
        keep: Vec<u8>,
    },
}

impl WlAction {
    /// Bit mask of the pages kept under IDA coding (empty for non-IDA
    /// actions).
    pub fn keep_mask(&self) -> u8 {
        match self {
            WlAction::Ida { keep, .. } => keep.iter().fold(0, |m, b| m | (1 << b)),
            _ => 0,
        }
    }

    /// Whether this action applies IDA coding to the wordline.
    pub fn applies_ida(&self) -> bool {
        matches!(self, WlAction::Ida { .. })
    }

    /// All valid pages that will be written into the new block by this
    /// action.
    pub fn moved_pages(&self) -> &[u8] {
        match self {
            WlAction::Nothing => &[],
            WlAction::MoveAll { pages } => pages,
            WlAction::Ida { move_out, .. } => move_out,
        }
    }
}

impl WlCase {
    /// Classify a wordline by its per-page validity mask (bit `b` set ⇔
    /// page `b` valid).
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_cell` is outside `1..=4` or the mask has bits
    /// beyond `bits_per_cell`.
    pub fn classify(bits_per_cell: u8, valid_mask: u8) -> Self {
        assert!(
            (1..=4).contains(&bits_per_cell),
            "bits per cell must be 1..=4"
        );
        let full = ((1u16 << bits_per_cell) - 1) as u8;
        assert_eq!(
            valid_mask & !full,
            0,
            "validity mask {valid_mask:#b} exceeds {bits_per_cell} bits"
        );
        WlCase {
            bits_per_cell,
            valid_mask,
        }
    }

    /// The per-page validity mask.
    pub fn valid_mask(self) -> u8 {
        self.valid_mask
    }

    /// The paper's 1-based case number for TLC wordlines (Table I).
    ///
    /// # Panics
    ///
    /// Panics if this is not a TLC (3 bits/cell) case.
    pub fn paper_case_number(self) -> u8 {
        assert_eq!(self.bits_per_cell, 3, "Table I numbering is TLC-specific");
        // (LSB, CSB, MSB) validity → case number.
        match (
            self.valid_mask & 1 != 0,
            self.valid_mask & 2 != 0,
            self.valid_mask & 4 != 0,
        ) {
            (true, true, true) => 1,
            (false, true, true) => 2,
            (true, false, true) => 3,
            (false, false, true) => 4,
            (true, true, false) => 5,
            (false, true, false) => 6,
            (true, false, false) => 7,
            (false, false, false) => 8,
        }
    }

    /// Whether the top (slowest) page is valid — the precondition for IDA
    /// coding to pay off.
    pub fn top_valid(self) -> bool {
        self.valid_mask & (1 << (self.bits_per_cell - 1)) != 0
    }

    /// Decide the refresh-time action for this wordline (the policy of
    /// Section III-C, "Selecting Pages to Apply IDA Coding").
    pub fn action(self) -> WlAction {
        if self.valid_mask == 0 {
            return WlAction::Nothing;
        }
        let valid_bits = |mask: u8| (0..self.bits_per_cell).filter(move |b| mask & (1 << b) != 0);
        if !self.top_valid() || self.bits_per_cell == 1 {
            return WlAction::MoveAll {
                pages: valid_bits(self.valid_mask).collect(),
            };
        }
        // Keep the contiguous valid suffix starting above the highest
        // invalid bit — but always release bit 0 so a merge exists.
        let highest_invalid = (0..self.bits_per_cell)
            .rev()
            .find(|b| self.valid_mask & (1 << b) == 0);
        let keep_from = highest_invalid.map_or(1, |b| b + 1).max(1);
        let keep: Vec<u8> = (keep_from..self.bits_per_cell).collect();
        let move_out: Vec<u8> = valid_bits(self.valid_mask)
            .filter(|&b| b < keep_from)
            .collect();
        WlAction::Ida { move_out, keep }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlc(valid: u8) -> WlAction {
        WlCase::classify(3, valid).action()
    }

    #[test]
    fn table_i_case_numbers() {
        assert_eq!(WlCase::classify(3, 0b111).paper_case_number(), 1);
        assert_eq!(WlCase::classify(3, 0b110).paper_case_number(), 2);
        assert_eq!(WlCase::classify(3, 0b101).paper_case_number(), 3);
        assert_eq!(WlCase::classify(3, 0b100).paper_case_number(), 4);
        assert_eq!(WlCase::classify(3, 0b011).paper_case_number(), 5);
        assert_eq!(WlCase::classify(3, 0b010).paper_case_number(), 6);
        assert_eq!(WlCase::classify(3, 0b001).paper_case_number(), 7);
        assert_eq!(WlCase::classify(3, 0b000).paper_case_number(), 8);
    }

    #[test]
    fn case_1_moves_lsb_adjusts_csb_msb() {
        assert_eq!(
            tlc(0b111),
            WlAction::Ida {
                move_out: vec![0],
                keep: vec![1, 2]
            }
        );
    }

    #[test]
    fn case_2_keeps_csb_msb_nothing_moves() {
        assert_eq!(
            tlc(0b110),
            WlAction::Ida {
                move_out: vec![],
                keep: vec![1, 2]
            }
        );
    }

    #[test]
    fn case_3_moves_lsb_adjusts_msb_only() {
        assert_eq!(
            tlc(0b101),
            WlAction::Ida {
                move_out: vec![0],
                keep: vec![2]
            }
        );
    }

    #[test]
    fn case_4_keeps_msb_only() {
        assert_eq!(
            tlc(0b100),
            WlAction::Ida {
                move_out: vec![],
                keep: vec![2]
            }
        );
    }

    #[test]
    fn cases_5_to_7_move_valid_pages() {
        assert_eq!(tlc(0b011), WlAction::MoveAll { pages: vec![0, 1] });
        assert_eq!(tlc(0b010), WlAction::MoveAll { pages: vec![1] });
        assert_eq!(tlc(0b001), WlAction::MoveAll { pages: vec![0] });
    }

    #[test]
    fn case_8_does_nothing() {
        assert_eq!(tlc(0b000), WlAction::Nothing);
    }

    #[test]
    fn qlc_figure_6_keeps_bits_3_and_4() {
        // Bits 1,2 invalid; bits 3,4 valid.
        let action = WlCase::classify(4, 0b1100).action();
        assert_eq!(
            action,
            WlAction::Ida {
                move_out: vec![],
                keep: vec![2, 3]
            }
        );
    }

    #[test]
    fn qlc_fully_valid_evicts_bit_1_only() {
        let action = WlCase::classify(4, 0b1111).action();
        assert_eq!(
            action,
            WlAction::Ida {
                move_out: vec![0],
                keep: vec![1, 2, 3]
            }
        );
    }

    #[test]
    fn mlc_lsb_invalid_keeps_msb() {
        let action = WlCase::classify(2, 0b10).action();
        assert_eq!(
            action,
            WlAction::Ida {
                move_out: vec![],
                keep: vec![1]
            }
        );
    }

    #[test]
    fn slc_never_applies_ida() {
        assert_eq!(
            WlCase::classify(1, 0b1).action(),
            WlAction::MoveAll { pages: vec![0] }
        );
        assert_eq!(WlCase::classify(1, 0).action(), WlAction::Nothing);
    }

    #[test]
    fn keep_mask_matches_keep_list() {
        let a = tlc(0b111);
        assert_eq!(a.keep_mask(), 0b110);
        assert!(a.applies_ida());
        assert_eq!(a.moved_pages(), &[0]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_mask_rejected() {
        let _ = WlCase::classify(2, 0b100);
    }
}
