//! Voltage-state merging — the physical mechanism of IDA coding.
//!
//! Given a coding scheme and the set of still-valid bits, states whose
//! valid-bit projections coincide are merged onto the *highest* state of
//! their group (paper Figure 5: S1→S8, S2→S7, S3→S6, S4→S5 when the LSB is
//! invalidated). Choosing the maximum guarantees every move is rightward,
//! i.e. achievable by ISPP charge injection without an erase.

use ida_flash::coding::{CodingScheme, VoltageState};

/// The result of planning a voltage-state merge for one invalidation mask.
///
/// Contains the per-state relocation map (for the ISPP controller) and the
/// merged [`CodingScheme`] governing reads afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct MergePlan {
    valid_mask: u8,
    state_map: Vec<VoltageState>,
    merged: CodingScheme,
}

impl MergePlan {
    /// Compute the merge for `coding` when only the bits in `valid_mask`
    /// are still valid.
    ///
    /// Works on *any* coding, full or already merged, so IDA can be applied
    /// incrementally (e.g. TLC case 2 first, case 4 later when the CSB is
    /// also invalidated).
    ///
    /// # Panics
    ///
    /// Panics if `valid_mask` requests a bit the coding cannot read (you
    /// cannot re-validate a bit that was already merged away).
    pub fn compute(coding: &CodingScheme, valid_mask: u8) -> Self {
        let readable = coding.readable_bits();
        assert_eq!(
            valid_mask & !readable,
            0,
            "valid mask {valid_mask:#b} requests bits outside readable set {readable:#b}"
        );

        // Group live states by their projection on the valid bits; the
        // representative of each group is its highest member so that every
        // relocation is a rightward (ISPP-feasible) move.
        let table = coding.table();
        let mut rep_for_state: Vec<VoltageState> =
            (0..coding.state_space() as u8).map(VoltageState).collect();
        let mut groups: Vec<(u8, Vec<VoltageState>)> = Vec::new();
        for &s in coding.live_states() {
            let key = table[s.0 as usize].project(valid_mask).0;
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(s),
                None => groups.push((key, vec![s])),
            }
        }
        for (_, members) in &groups {
            let rep = *members.iter().max().expect("group is non-empty");
            for &m in members {
                rep_for_state[m.0 as usize] = rep;
            }
        }
        let mut live: Vec<VoltageState> = groups
            .iter()
            .map(|(_, members)| *members.iter().max().expect("non-empty"))
            .collect();
        live.sort_unstable();

        let merged = CodingScheme::from_parts(
            format!("{}+ida[valid={valid_mask:#05b}]", coding.name()),
            coding.bits_per_cell(),
            valid_mask,
            table.to_vec(),
            live,
        );
        MergePlan {
            valid_mask,
            state_map: rep_for_state,
            merged,
        }
    }

    /// The bit mask this plan preserves.
    pub fn valid_mask(&self) -> u8 {
        self.valid_mask
    }

    /// The relocation map: `state_map()[old_state] = new_state`. Identity
    /// for states the merge does not touch.
    pub fn state_map(&self) -> &[VoltageState] {
        &self.state_map
    }

    /// The coding scheme in force after the adjustment.
    pub fn merged(&self) -> &CodingScheme {
        &self.merged
    }

    /// Whether this plan actually moves any state (i.e. the merge is
    /// beneficial at the physical level).
    pub fn is_trivial(&self) -> bool {
        self.state_map
            .iter()
            .enumerate()
            .all(|(i, s)| s.0 as usize == i)
    }

    /// Number of distinct voltage states remaining after the merge.
    pub fn remaining_states(&self) -> usize {
        self.merged.live_states().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlc_lsb_invalid_matches_paper_figure_5() {
        let plan = MergePlan::compute(&CodingScheme::tlc_124(), 0b110);
        // S1→S8, S2→S7, S3→S6, S4→S5; S5..S8 stay.
        let expect = [7, 6, 5, 4, 4, 5, 6, 7];
        for (s, &e) in expect.iter().enumerate() {
            assert_eq!(plan.state_map()[s], VoltageState(e), "state S{}", s + 1);
        }
        assert_eq!(plan.remaining_states(), 4);
        assert_eq!(plan.merged().sense_count(1), 1);
        assert_eq!(plan.merged().sense_count(2), 2);
    }

    #[test]
    fn tlc_lsb_and_csb_invalid_merges_to_two_states() {
        let plan = MergePlan::compute(&CodingScheme::tlc_124(), 0b100);
        assert_eq!(plan.remaining_states(), 2);
        assert_eq!(plan.merged().sense_count(2), 1);
        // MSB=1 states {S1,S4,S5,S8} → S8; MSB=0 states → S7.
        for s in [0u8, 3, 4, 7] {
            assert_eq!(plan.state_map()[s as usize], VoltageState(7));
        }
        for s in [1u8, 2, 5, 6] {
            assert_eq!(plan.state_map()[s as usize], VoltageState(6));
        }
    }

    #[test]
    fn mlc_lsb_invalid_halves_msb_senses() {
        let plan = MergePlan::compute(&CodingScheme::mlc(), 0b10);
        assert_eq!(plan.remaining_states(), 2);
        assert_eq!(plan.merged().sense_count(1), 1);
    }

    #[test]
    fn qlc_two_lower_bits_invalid_matches_paper_figure_6() {
        // Bits 1 and 2 invalidated; bits 3 and 4 drop from 4/8 senses to 1/2.
        let plan = MergePlan::compute(&CodingScheme::qlc(), 0b1100);
        assert_eq!(plan.remaining_states(), 4);
        assert_eq!(plan.merged().sense_count(2), 1);
        assert_eq!(plan.merged().sense_count(3), 2);
    }

    #[test]
    fn all_moves_are_rightward_for_every_mask_and_coding() {
        for coding in [
            CodingScheme::mlc(),
            CodingScheme::tlc_124(),
            CodingScheme::tlc_232(),
            CodingScheme::qlc(),
        ] {
            let full = (coding.state_space() - 1) as u8;
            for mask in 0..=full {
                let plan = MergePlan::compute(&coding, mask);
                for (s, &t) in plan.state_map().iter().enumerate() {
                    assert!(
                        t.0 as usize >= s,
                        "{} mask {mask:#b}: S{} moved left to {t}",
                        coding.name(),
                        s + 1
                    );
                }
            }
        }
    }

    #[test]
    fn full_mask_merge_is_identity() {
        let plan = MergePlan::compute(&CodingScheme::tlc_124(), 0b111);
        assert!(plan.is_trivial());
        assert_eq!(plan.remaining_states(), 8);
    }

    #[test]
    fn empty_mask_collapses_to_single_state() {
        let plan = MergePlan::compute(&CodingScheme::tlc_124(), 0);
        assert_eq!(plan.remaining_states(), 1);
        assert_eq!(plan.merged().live_states(), &[VoltageState(7)]);
    }

    #[test]
    fn incremental_merge_equals_direct_merge_sense_counts() {
        // TLC: merge away LSB first, then CSB; MSB sensing must match the
        // direct LSB+CSB merge.
        let step1 = MergePlan::compute(&CodingScheme::tlc_124(), 0b110);
        let step2 = MergePlan::compute(step1.merged(), 0b100);
        let direct = MergePlan::compute(&CodingScheme::tlc_124(), 0b100);
        assert_eq!(
            step2.merged().sense_count(2),
            direct.merged().sense_count(2)
        );
        assert_eq!(step2.remaining_states(), direct.remaining_states());
    }

    #[test]
    fn merged_coding_still_decodes_valid_bits() {
        for coding in [CodingScheme::tlc_124(), CodingScheme::qlc()] {
            let full = (coding.state_space() - 1) as u8;
            for mask in 1..=full {
                let plan = MergePlan::compute(&coding, mask);
                for &s in coding.live_states() {
                    let dest = plan.state_map()[s.0 as usize];
                    for b in 0..coding.bits_per_cell() {
                        if mask & (1 << b) != 0 {
                            assert_eq!(
                                plan.merged().read_bit(dest, b),
                                coding.pattern(s).bit(b),
                                "{} mask {mask:#b} state {s} bit {b}",
                                coding.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside readable set")]
    fn cannot_revalidate_merged_bit() {
        let step1 = MergePlan::compute(&CodingScheme::tlc_124(), 0b110);
        let _ = MergePlan::compute(step1.merged(), 0b111);
    }

    #[test]
    fn alternative_tlc_232_also_benefits() {
        // The paper notes IDA generalizes to the flatter vendor coding too.
        let plan = MergePlan::compute(&CodingScheme::tlc_232(), 0b110);
        assert!(plan.merged().sense_count(1) < 3);
        assert!(plan.merged().sense_count(2) <= 2);
        assert_eq!(plan.remaining_states(), 4);
    }
}
