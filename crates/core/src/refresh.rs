//! The modified data-refresh flow (paper Figure 7).
//!
//! A conventional (remapping-based) refresh reads every valid page of the
//! target block, ECC-corrects it, and writes it into a new block. The
//! IDA-modified refresh instead:
//!
//! 1. reads and corrects all valid pages (same as baseline);
//! 2. classifies each wordline (Table I) — pages that cannot benefit are
//!    written to the new block, pages selected for IDA stay behind;
//! 3. voltage-adjusts each selected wordline (one ISPP pass per WL);
//! 4. re-reads every kept page to detect adjustment-induced corruption;
//! 5. error-free kept pages stay in the (now IDA-coded) target block; the
//!    corrupted ones have their clean copies written to the new block.
//!
//! This module is a pure *planner*: it turns a block's validity map into
//! the exact sequence of page reads, page writes, and wordline adjustments,
//! with corruption sampled from an [`InterferenceModel`]. The FTL executes
//! the plan and the simulator charges its timing.

use crate::cases::{WlAction, WlCase};
use ida_flash::interference::InterferenceModel;

/// A page within the refresh target block: wordline index and bit (page
/// type) index.
pub type PageRef = (u32, u8);

/// Whether the refresh runs the baseline flow or the IDA-modified flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// Original refresh: move every valid page to the new block.
    Baseline,
    /// IDA-modified refresh (Figure 7b).
    Ida,
}

ida_snap::snap_enum!(RefreshMode {
    0 => RefreshMode::Baseline,
    1 => RefreshMode::Ida,
});

/// The planned operations of one block refresh.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefreshPlan {
    /// Step 1: valid pages read out and ECC-corrected (`N_valid` of them).
    pub initial_reads: Vec<PageRef>,
    /// Step 3: pages written to the new block because they cannot benefit
    /// from IDA (cases 5–7). Baseline refresh puts *all* valid pages here.
    pub moves: Vec<PageRef>,
    /// Step 3: valid pages *evicted* from IDA-selected wordlines to enable
    /// a merge (the LSB moves of cases 1 and 3). The paper places these
    /// into the fast LSB pages of the new block, so they are kept separate
    /// from ordinary moves.
    pub evictions: Vec<PageRef>,
    /// Step 4: wordlines whose threshold voltages are adjusted.
    pub adjusted_wordlines: Vec<u32>,
    /// Per adjusted wordline, the bit mask of pages kept under IDA coding.
    /// Parallel to `adjusted_wordlines`.
    pub keep_masks: Vec<u8>,
    /// Step 5: verification reads of kept pages after the adjustment
    /// (`N_target` of them — the *additional reads* of Table IV).
    pub verify_reads: Vec<PageRef>,
    /// Step 7/8 outcome: kept pages found corrupted, whose clean copies are
    /// written to the new block (`N_error` — the *additional writes*).
    pub error_writes: Vec<PageRef>,
    /// Kept pages that survived intact and remain in the IDA block.
    pub survivors: Vec<PageRef>,
}

impl RefreshPlan {
    /// `N_valid`: valid pages in the target block.
    pub fn n_valid(&self) -> usize {
        self.initial_reads.len()
    }

    /// `N_target`: pages reprogrammed by IDA coding.
    pub fn n_target(&self) -> usize {
        self.verify_reads.len()
    }

    /// `N_error`: kept pages corrupted by the adjustment.
    pub fn n_error(&self) -> usize {
        self.error_writes.len()
    }

    /// Total page reads the refresh performs
    /// (`N_valid + N_target`, Section III-C).
    pub fn total_reads(&self) -> usize {
        self.initial_reads.len() + self.verify_reads.len()
    }

    /// Total page writes the refresh performs. For the baseline this is
    /// `N_valid`; for IDA it is `N_valid − N_target + N_error`.
    pub fn total_writes(&self) -> usize {
        self.moves.len() + self.evictions.len() + self.error_writes.len()
    }
}

/// Plans refresh operations for blocks of a given cell density.
#[derive(Debug, Clone)]
pub struct RefreshPlanner {
    bits_per_cell: u8,
    mode: RefreshMode,
    interference: InterferenceModel,
}

ida_snap::snap_struct!(RefreshPlanner {
    bits_per_cell,
    mode,
    interference,
});

impl RefreshPlanner {
    /// A planner for `bits_per_cell` flash in the given mode; `interference`
    /// supplies the per-page corruption draws of step 5 (ignored in
    /// baseline mode).
    pub fn new(bits_per_cell: u8, mode: RefreshMode, interference: InterferenceModel) -> Self {
        assert!(
            (1..=4).contains(&bits_per_cell),
            "bits per cell must be 1..=4"
        );
        RefreshPlanner {
            bits_per_cell,
            mode,
            interference,
        }
    }

    /// The planner's refresh mode.
    pub fn mode(&self) -> RefreshMode {
        self.mode
    }

    /// Plan the refresh of one block. `wl_valid_masks[w]` holds the
    /// validity bit mask of wordline `w` (bit `b` set ⇔ page `b` valid).
    ///
    /// Wordlines already carrying IDA coding can be passed too — their mask
    /// simply reflects the still-valid pages, and because the planner is
    /// driven by masks alone, they are re-planned like any other wordline
    /// (in the simulator, refresh of an IDA block moves its pages out, as
    /// the paper requires IDA blocks to be reclaimed on the next cycle).
    pub fn plan_block(&mut self, wl_valid_masks: &[u8]) -> RefreshPlan {
        let mut plan = RefreshPlan::default();
        for (w, &mask) in wl_valid_masks.iter().enumerate() {
            let w = w as u32;
            for b in 0..self.bits_per_cell {
                if mask & (1 << b) != 0 {
                    plan.initial_reads.push((w, b));
                }
            }
            match self.mode {
                RefreshMode::Baseline => {
                    for b in 0..self.bits_per_cell {
                        if mask & (1 << b) != 0 {
                            plan.moves.push((w, b));
                        }
                    }
                }
                RefreshMode::Ida => match WlCase::classify(self.bits_per_cell, mask).action() {
                    WlAction::Nothing => {}
                    WlAction::MoveAll { pages } => {
                        plan.moves.extend(pages.into_iter().map(|b| (w, b)));
                    }
                    WlAction::Ida { move_out, keep } => {
                        plan.evictions.extend(move_out.into_iter().map(|b| (w, b)));
                        let mut keep_mask = 0u8;
                        for b in keep {
                            keep_mask |= 1 << b;
                            // Only pages that were valid hold data to verify;
                            // kept-but-invalid pages need no read.
                            if mask & (1 << b) != 0 {
                                plan.verify_reads.push((w, b));
                                if self.interference.page_corrupted() {
                                    plan.error_writes.push((w, b));
                                } else {
                                    plan.survivors.push((w, b));
                                }
                            }
                        }
                        plan.adjusted_wordlines.push(w);
                        plan.keep_masks.push(keep_mask);
                    }
                },
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner(mode: RefreshMode, rate: f64) -> RefreshPlanner {
        RefreshPlanner::new(3, mode, InterferenceModel::with_seed(rate, 42))
    }

    /// A block with the four IDA-eligible cases and the four others.
    fn mixed_block() -> Vec<u8> {
        vec![0b111, 0b110, 0b101, 0b100, 0b011, 0b010, 0b001, 0b000]
    }

    #[test]
    fn baseline_moves_every_valid_page() {
        let mut p = planner(RefreshMode::Baseline, 0.5);
        let plan = p.plan_block(&mixed_block());
        let n_valid: usize = mixed_block().iter().map(|m| m.count_ones() as usize).sum();
        assert_eq!(plan.n_valid(), n_valid);
        assert_eq!(plan.moves.len(), n_valid);
        assert_eq!(plan.n_target(), 0);
        assert_eq!(plan.n_error(), 0);
        assert!(plan.adjusted_wordlines.is_empty());
        assert_eq!(plan.total_reads(), n_valid);
        assert_eq!(plan.total_writes(), n_valid);
    }

    #[test]
    fn ida_plan_follows_table_i() {
        let mut p = planner(RefreshMode::Ida, 0.0);
        let plan = p.plan_block(&mixed_block());
        // Cases 1-4 adjust (wordlines 0..4).
        assert_eq!(plan.adjusted_wordlines, vec![0, 1, 2, 3]);
        assert_eq!(plan.keep_masks, vec![0b110, 0b110, 0b100, 0b100]);
        // Evictions: LSBs of cases 1,3. Moves: valid pages of cases 5-7.
        let mut evictions = plan.evictions.clone();
        evictions.sort_unstable();
        assert_eq!(evictions, vec![(0, 0), (2, 0)]);
        let mut moves = plan.moves.clone();
        moves.sort_unstable();
        assert_eq!(moves, vec![(4, 0), (4, 1), (5, 1), (6, 0)]);
        // Verify reads: kept valid pages of cases 1-4.
        assert_eq!(plan.n_target(), 2 + 2 + 1 + 1);
        // Error-free: everyone survives.
        assert_eq!(plan.n_error(), 0);
        assert_eq!(plan.survivors.len(), plan.n_target());
    }

    #[test]
    fn read_write_accounting_matches_section_iii_c() {
        // N_reads = N_valid + N_target; N_writes = N_valid - N_target + N_error.
        let mut p = planner(RefreshMode::Ida, 0.3);
        let plan = p.plan_block(&mixed_block());
        assert_eq!(plan.total_reads(), plan.n_valid() + plan.n_target());
        assert_eq!(
            plan.total_writes(),
            plan.n_valid() - plan.n_target() + plan.n_error()
        );
    }

    #[test]
    fn full_error_rate_writes_back_every_kept_page() {
        let mut p = planner(RefreshMode::Ida, 1.0);
        let plan = p.plan_block(&mixed_block());
        assert_eq!(plan.n_error(), plan.n_target());
        assert!(plan.survivors.is_empty());
        // Every valid page ends up written somewhere: total writes == N_valid.
        assert_eq!(plan.total_writes(), plan.n_valid());
    }

    #[test]
    fn empty_block_produces_empty_plan() {
        let mut p = planner(RefreshMode::Ida, 0.2);
        let plan = p.plan_block(&[0, 0, 0]);
        assert_eq!(plan, RefreshPlan::default());
    }

    #[test]
    fn every_valid_page_is_accounted_exactly_once() {
        let mut p = planner(RefreshMode::Ida, 0.5);
        let block = mixed_block();
        let plan = p.plan_block(&block);
        // moved + evicted + survivors + error_writes partitions the valid
        // pages.
        let mut all: Vec<PageRef> = plan
            .moves
            .iter()
            .chain(&plan.evictions)
            .chain(&plan.survivors)
            .chain(&plan.error_writes)
            .copied()
            .collect();
        all.sort_unstable();
        let mut valid: Vec<PageRef> = Vec::new();
        for (w, &mask) in block.iter().enumerate() {
            for b in 0..3 {
                if mask & (1 << b) != 0 {
                    valid.push((w as u32, b));
                }
            }
        }
        all.dedup();
        assert_eq!(all, valid);
    }

    #[test]
    fn mlc_planner_adjusts_lsb_invalid_wordlines() {
        let mut p = RefreshPlanner::new(2, RefreshMode::Ida, InterferenceModel::new(0.0));
        let plan = p.plan_block(&[0b10, 0b01, 0b11]);
        assert_eq!(plan.adjusted_wordlines, vec![0, 2]);
        assert_eq!(plan.keep_masks, vec![0b10, 0b10]);
        // WL 1 (MSB invalid) moves its LSB; WL 2 evicts its LSB.
        assert_eq!(plan.moves, vec![(1, 0)]);
        assert_eq!(plan.evictions, vec![(2, 0)]);
    }
}
