//! Invalid Data-Aware (IDA) coding — the paper's primary contribution.
//!
//! High-density flash reads different logical pages of a wordline with a
//! different number of sensing operations (TLC conventional coding: LSB 1,
//! CSB 2, MSB 4). When the FTL invalidates some pages of a wordline, the
//! remaining valid pages still pay the full sensing cost, because several
//! voltage states have become *indistinguishable on the valid bits* yet the
//! cells still occupy all of them.
//!
//! IDA coding merges those duplicated states — moving cells rightward
//! (higher threshold voltage, the only direction ISPP can go) onto one
//! representative per group — and re-derives the sensing procedures on the
//! smaller state set, cutting the sense count of every remaining page:
//!
//! | wordline situation (TLC) | CSB senses | MSB senses |
//! |---|---|---|
//! | all valid (conventional)  | 2 | 4 |
//! | LSB invalid → IDA         | 1 | 2 |
//! | LSB+CSB invalid → IDA     | — | 1 |
//!
//! The crate provides:
//!
//! - [`merge`] — the state-merge computation for *any* coding scheme and
//!   invalidation mask (generalizes to MLC and QLC, paper Figure 6);
//! - [`cases`] — the wordline case table (paper Table I) deciding which
//!   pages move to a new block and which stay behind under IDA coding;
//! - [`refresh`] — the modified data-refresh flow (paper Figure 7) that
//!   hides the voltage-adjustment cost inside the refresh operation;
//! - [`analysis`] — the read/write overhead accounting of Section III-C.
//!
//! # Example
//!
//! ```
//! use ida_core::merge::MergePlan;
//! use ida_flash::coding::CodingScheme;
//!
//! // A TLC wordline whose LSB page was invalidated:
//! let conventional = CodingScheme::tlc_124();
//! let plan = MergePlan::compute(&conventional, 0b110); // CSB+MSB valid
//!
//! // CSB now reads with 1 sense (was 2), MSB with 2 (was 4):
//! assert_eq!(plan.merged().sense_count(1), 1);
//! assert_eq!(plan.merged().sense_count(2), 2);
//! ```

pub mod analysis;
pub mod cases;
pub mod merge;
pub mod refresh;

pub use analysis::RefreshOverhead;
pub use cases::{WlAction, WlCase};
pub use merge::MergePlan;
pub use refresh::{RefreshMode, RefreshPlan, RefreshPlanner};
