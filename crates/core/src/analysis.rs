//! Refresh overhead accounting (paper Section III-C and Table IV).
//!
//! The paper quantifies the extra work the IDA-modified refresh performs
//! over the baseline refresh of the same block:
//!
//! - additional reads  = `N_target`  (post-adjustment verification reads);
//! - additional writes = `N_error`   (corrupted kept pages written back);
//! - writes saved      = `N_target − N_error` (kept pages not rewritten).
//!
//! [`RefreshOverhead`] accumulates these quantities over many refresh
//! operations so the Table IV rows can be reported per workload.

use crate::refresh::RefreshPlan;

/// Accumulated refresh cost statistics across many block refreshes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshOverhead {
    /// Number of block refreshes accumulated.
    pub refreshes: u64,
    /// Σ `N_valid` — valid pages encountered.
    pub valid_pages: u64,
    /// Σ `N_target` — pages reprogrammed by IDA coding (= additional reads).
    pub target_pages: u64,
    /// Σ `N_error` — kept pages corrupted by adjustment (= additional
    /// writes).
    pub error_pages: u64,
    /// Σ pages moved to the new block.
    pub moved_pages: u64,
    /// Σ wordlines voltage-adjusted.
    pub adjusted_wordlines: u64,
}

ida_snap::snap_struct!(RefreshOverhead {
    refreshes,
    valid_pages,
    target_pages,
    error_pages,
    moved_pages,
    adjusted_wordlines,
});

impl RefreshOverhead {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one refresh plan into the totals.
    pub fn record(&mut self, plan: &RefreshPlan) {
        self.refreshes += 1;
        self.valid_pages += plan.n_valid() as u64;
        self.target_pages += plan.n_target() as u64;
        self.error_pages += plan.n_error() as u64;
        self.moved_pages += (plan.moves.len() + plan.evictions.len()) as u64;
        self.adjusted_wordlines += plan.adjusted_wordlines.len() as u64;
    }

    /// Mean `N_valid` per refresh (Table IV column 2).
    pub fn mean_valid(&self) -> f64 {
        self.mean(self.valid_pages)
    }

    /// Mean additional reads per refresh (Table IV column 3).
    pub fn mean_additional_reads(&self) -> f64 {
        self.mean(self.target_pages)
    }

    /// Mean additional writes per refresh (Table IV column 4).
    pub fn mean_additional_writes(&self) -> f64 {
        self.mean(self.error_pages)
    }

    /// Mean page writes *saved* versus the baseline refresh, which would
    /// have rewritten every valid page.
    pub fn mean_writes_saved(&self) -> f64 {
        self.mean(self.target_pages.saturating_sub(self.error_pages))
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &RefreshOverhead) {
        self.refreshes += other.refreshes;
        self.valid_pages += other.valid_pages;
        self.target_pages += other.target_pages;
        self.error_pages += other.error_pages;
        self.moved_pages += other.moved_pages;
        self.adjusted_wordlines += other.adjusted_wordlines;
    }

    fn mean(&self, total: u64) -> f64 {
        if self.refreshes == 0 {
            0.0
        } else {
            total as f64 / self.refreshes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refresh::{RefreshMode, RefreshPlanner};
    use ida_flash::interference::InterferenceModel;

    fn sample_plan(rate: f64, seed: u64) -> RefreshPlan {
        let mut p = RefreshPlanner::new(
            3,
            RefreshMode::Ida,
            InterferenceModel::with_seed(rate, seed),
        );
        // 64 wordlines, mixture of cases.
        let masks: Vec<u8> = (0..64u32).map(|w| (w % 8) as u8).collect();
        p.plan_block(&masks)
    }

    #[test]
    fn record_accumulates_counts() {
        let mut acc = RefreshOverhead::new();
        let plan = sample_plan(0.2, 1);
        acc.record(&plan);
        acc.record(&plan);
        assert_eq!(acc.refreshes, 2);
        assert_eq!(acc.valid_pages, 2 * plan.n_valid() as u64);
        assert_eq!(acc.target_pages, 2 * plan.n_target() as u64);
        assert_eq!(acc.error_pages, 2 * plan.n_error() as u64);
    }

    #[test]
    fn means_divide_by_refresh_count() {
        let mut acc = RefreshOverhead::new();
        acc.record(&sample_plan(0.2, 1));
        assert_eq!(acc.mean_valid(), acc.valid_pages as f64);
        acc.record(&sample_plan(0.2, 2));
        assert!((acc.mean_valid() - acc.valid_pages as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_reports_zero_means() {
        let acc = RefreshOverhead::new();
        assert_eq!(acc.mean_valid(), 0.0);
        assert_eq!(acc.mean_additional_reads(), 0.0);
        assert_eq!(acc.mean_additional_writes(), 0.0);
    }

    #[test]
    fn e20_additional_writes_are_about_a_fifth_of_reads() {
        // Table IV structure: additional writes ≈ 20 % of additional reads
        // at the paper's 20 % corruption rate.
        let mut acc = RefreshOverhead::new();
        for seed in 0..200 {
            acc.record(&sample_plan(0.2, seed));
        }
        let ratio = acc.mean_additional_writes() / acc.mean_additional_reads();
        assert!(
            (ratio - 0.2).abs() < 0.03,
            "write/read overhead ratio {ratio} should be ≈ 0.2"
        );
    }

    #[test]
    fn merge_combines_accumulators() {
        let mut a = RefreshOverhead::new();
        let mut b = RefreshOverhead::new();
        a.record(&sample_plan(0.1, 3));
        b.record(&sample_plan(0.1, 4));
        let mut c = a;
        c.merge(&b);
        assert_eq!(c.refreshes, 2);
        assert_eq!(c.valid_pages, a.valid_pages + b.valid_pages);
    }
}
