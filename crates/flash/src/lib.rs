//! NAND flash device model for the IDA-coding reproduction.
//!
//! This crate models everything that happens *inside* a flash chip:
//!
//! - [`geometry`] — the physical organization of an SSD's flash array
//!   (channels, chips, dies, planes, blocks, wordlines, pages);
//! - [`addr`] — strongly-typed physical addresses and conversions;
//! - [`coding`] — multi-level cell coding schemes (how 1–4 bits map onto the
//!   threshold-voltage states of a cell, and which read voltages must be
//!   sensed to recover each bit);
//! - [`timing`] — per-operation latencies, including the *asymmetric* page
//!   read latencies that motivate the paper;
//! - [`wordline`] — a functional, cell-accurate model of a wordline that can
//!   be programmed, sensed, and voltage-adjusted;
//! - [`interference`] — the program-interference error model used when
//!   voltage adjustment corrupts neighboring data.
//!
//! The crate is deliberately independent of any FTL or simulator concern: it
//! answers questions like *"how many sensing operations does reading the CSB
//! page of this wordline take under its current coding?"* and *"what happens
//! to the stored bits if these states are merged?"*.
//!
//! # Example
//!
//! ```
//! use ida_flash::coding::CodingScheme;
//!
//! let tlc = CodingScheme::tlc_124();
//! // The conventional TLC coding reads LSB/CSB/MSB with 1/2/4 senses.
//! assert_eq!(tlc.sense_count(0), 1);
//! assert_eq!(tlc.sense_count(1), 2);
//! assert_eq!(tlc.sense_count(2), 4);
//! ```

pub mod addr;
pub mod block;
pub mod coding;
pub mod geometry;
pub mod interference;
pub mod timing;
pub mod wordline;

pub use addr::{BlockAddr, DieAddr, PageAddr, PageType, PlaneAddr, WordlineAddr};
pub use block::{Block, BlockError};
pub use coding::{BitPattern, CodingScheme, ReadProcedure, VoltageState};
pub use geometry::Geometry;
pub use interference::InterferenceModel;
pub use timing::{FlashTiming, SimTime, NS_PER_MS, NS_PER_US};
pub use wordline::{Wordline, WordlineError};
