//! Multi-level cell coding schemes.
//!
//! A coding scheme assigns to each threshold-voltage *state* of a cell a
//! tuple of bit values, one per logical page carried by the wordline. The
//! assignment must be a Gray code (adjacent states differ in exactly one
//! bit) so that a small voltage disturbance corrupts at most one page.
//!
//! Reading bit `b` requires sensing the wordline once per *transition* of
//! bit `b` along the state axis: read voltage `Vj` (0-based `j`) sits
//! between states `j` and `j+1`, and a sense with `Vj` tells whether the
//! cell's state is `<= j` ("on") or `> j` ("off"). The per-bit read
//! procedure is therefore fully determined by the coding table, which is how
//! this module derives it.
//!
//! The conventional TLC coding of the paper's Figure 2 is
//! [`CodingScheme::tlc_124`]; reading LSB/CSB/MSB takes 1/2/4 senses. The
//! alternative vendor coding with 2/3/2 senses (Section III-B) is
//! [`CodingScheme::tlc_232`]. MLC and QLC counterparts are
//! [`CodingScheme::mlc`] and [`CodingScheme::qlc`].

use std::fmt;

/// A threshold-voltage state of a cell, 0-based.
///
/// State 0 is the erased state (paper's `S1`); higher indices are higher
/// threshold voltages. ISPP programming can only *increase* the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VoltageState(pub u8);

impl VoltageState {
    /// The erased state (all bits read as 1).
    pub const ERASED: VoltageState = VoltageState(0);

    /// The raw state index.
    pub fn index(self) -> u8 {
        self.0
    }

    /// The paper's 1-based name for this state (`S1`, `S2`, …).
    pub fn paper_name(self) -> String {
        format!("S{}", self.0 + 1)
    }
}

impl fmt::Display for VoltageState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.paper_name())
    }
}

/// The bit values a state encodes, packed into a `u8`.
///
/// Bit `b` of the mask is the value of logical page `b` (0 = LSB). Only the
/// low `bits_per_cell` bits are meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitPattern(pub u8);

impl BitPattern {
    /// The value (0 or 1) of bit `b`.
    pub fn bit(self, b: u8) -> u8 {
        (self.0 >> b) & 1
    }

    /// This pattern restricted to the bits set in `mask` (other bits
    /// forced to zero). Used to compare states when some bits are invalid.
    pub fn project(self, mask: u8) -> BitPattern {
        BitPattern(self.0 & mask)
    }
}

impl fmt::Display for BitPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04b}", self.0)
    }
}

/// The sensing procedure that recovers one bit: the ordered set of read
/// voltages to apply. Read voltage `j` (0-based) distinguishes states
/// `<= j` from states `> j`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReadProcedure {
    /// 0-based read-voltage indices, ascending. In paper terms, index `j`
    /// is `V(j+1)`.
    pub voltages: Vec<u8>,
}

impl ReadProcedure {
    /// Number of wordline sensing operations this read performs — the
    /// quantity that determines the memory-access latency.
    pub fn sense_count(&self) -> u32 {
        self.voltages.len() as u32
    }

    /// Decode the bit value stored by a cell in `state`, given the coding
    /// `table` and `live` state set this procedure was derived from.
    ///
    /// The decode emulates the hardware: each sense yields on/off, the
    /// on/off vector identifies the *interval* between read voltages the
    /// state lies in, and every live state in one interval shares the bit
    /// value (that is what makes the procedure valid).
    ///
    /// # Panics
    ///
    /// Panics if the identified interval contains no live state (the cell
    /// was in a state that this coding never programs).
    pub fn decode(
        &self,
        state: VoltageState,
        table: &[BitPattern],
        live: &[VoltageState],
        bit: u8,
    ) -> u8 {
        // Interval index = number of read voltages the cell is "off" at.
        let interval = self
            .voltages
            .iter()
            .filter(|&&v| state.0 > v) // "off" at voltage v
            .count();
        let lo = if interval == 0 {
            0
        } else {
            self.voltages[interval - 1] + 1
        };
        let rep = live
            .iter()
            .copied()
            .find(|s| s.0 >= lo)
            .expect("sensing interval contains no live state");
        table[rep.0 as usize].bit(bit)
    }
}

/// A complete multi-level cell coding scheme.
///
/// Immutable once built; constructors validate that the table is a proper
/// Gray code covering all states exactly once (for full codings) or a
/// consistent partial coding (for merged/IDA codings, where only a subset of
/// states remains in use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodingScheme {
    name: String,
    bits_per_cell: u8,
    /// Which bits are readable under this coding (mask). Full codings have
    /// all `bits_per_cell` bits; merged codings have fewer.
    readable_bits: u8,
    /// `table[s]` = bits encoded by state `s`. Always `2^bits_per_cell`
    /// entries; entries for unused states (merged codings) still hold the
    /// pre-merge values but are never occupied.
    table: Vec<BitPattern>,
    /// States that cells may legitimately occupy under this coding,
    /// ascending. Full codings: all states.
    live_states: Vec<VoltageState>,
    /// Read procedure per bit (index = bit). Bits not readable have an
    /// empty procedure.
    reads: Vec<ReadProcedure>,
}

impl CodingScheme {
    /// Build a full coding scheme from a Gray-code table.
    ///
    /// `table[s]` gives the bit pattern of state `s`; all `2^bits` states
    /// are live and all bits readable.
    ///
    /// # Panics
    ///
    /// Panics if the table length is not `2^bits`, entries are not unique,
    /// state 0 is not all-ones (the erased state must read as 1s), or
    /// adjacent states differ in more than one bit (not a Gray code).
    pub fn from_gray_table(name: impl Into<String>, bits: u8, table: Vec<BitPattern>) -> Self {
        let name = name.into();
        let n = 1usize << bits;
        assert_eq!(table.len(), n, "{name}: table must have {n} entries");
        let full_mask = (n - 1) as u8;
        assert_eq!(
            table[0].0, full_mask,
            "{name}: erased state must encode all-ones"
        );
        let mut seen = vec![false; n];
        for &p in &table {
            assert!(
                (p.0 as usize) < n && !seen[p.0 as usize],
                "{name}: bit patterns must be a permutation of 0..{n}"
            );
            seen[p.0 as usize] = true;
        }
        for w in table.windows(2) {
            let diff = w[0].0 ^ w[1].0;
            assert_eq!(
                diff.count_ones(),
                1,
                "{name}: adjacent states must differ in exactly one bit (Gray code)"
            );
        }
        let live_states = (0..n as u8).map(VoltageState).collect();
        Self::from_parts(name, bits, full_mask, table, live_states)
    }

    /// Build a (possibly partial) coding from explicit parts. Used by the
    /// IDA merge machinery in `ida-core` to construct merged codings.
    ///
    /// # Panics
    ///
    /// Panics if `live_states` is empty, unsorted, or contains duplicates,
    /// or if two live states encode the same readable-bit projection.
    pub fn from_parts(
        name: impl Into<String>,
        bits: u8,
        readable_bits: u8,
        table: Vec<BitPattern>,
        live_states: Vec<VoltageState>,
    ) -> Self {
        let name = name.into();
        assert!(!live_states.is_empty(), "{name}: no live states");
        assert!(
            live_states.windows(2).all(|w| w[0] < w[1]),
            "{name}: live states must be strictly ascending"
        );
        for w in live_states.windows(2) {
            // No two adjacent live states may be indistinguishable on
            // readable bits (a merge must have collapsed them).
            assert!(
                table[w[0].0 as usize].project(readable_bits)
                    != table[w[1].0 as usize].project(readable_bits),
                "{name}: adjacent live states encode identical readable bits"
            );
        }
        let reads = (0..bits)
            .map(|b| {
                if readable_bits & (1 << b) == 0 {
                    ReadProcedure { voltages: vec![] }
                } else {
                    derive_read_procedure(&table, &live_states, b)
                }
            })
            .collect();
        CodingScheme {
            name,
            bits_per_cell: bits,
            readable_bits,
            table,
            live_states,
            reads,
        }
    }

    /// The conventional TLC coding of the paper's Figure 2 (1/2/4 senses
    /// for LSB/CSB/MSB). Derived from the inverted binary-reflected Gray
    /// code.
    pub fn tlc_124() -> Self {
        Self::from_gray_table("tlc-1-2-4", 3, inverted_brgc_table(3))
    }

    /// The alternative vendor TLC coding mentioned in Section III-B
    /// (2/3/2 senses for LSB/CSB/MSB) — much flatter read latencies.
    pub fn tlc_232() -> Self {
        // Hamiltonian path on the 3-cube with per-bit transition counts
        // (2, 3, 2), starting at the erased all-ones state:
        // 111 → 011 → 001 → 000 → 010 → 110 → 100 → 101  (L,C,M)
        let pats = [0b111, 0b110, 0b100, 0b000, 0b010, 0b011, 0b001, 0b101];
        Self::from_gray_table(
            "tlc-2-3-2",
            3,
            pats.iter().map(|&p| BitPattern(p)).collect(),
        )
    }

    /// The conventional MLC coding (1/2 senses for LSB/MSB; paper Section
    /// V-G uses 65 µs / 115 µs for the two page reads).
    pub fn mlc() -> Self {
        Self::from_gray_table("mlc-1-2", 2, inverted_brgc_table(2))
    }

    /// The conventional QLC coding of the paper's Figure 6 (1/2/4/8 senses
    /// for Bits 1–4).
    pub fn qlc() -> Self {
        Self::from_gray_table("qlc-1-2-4-8", 4, inverted_brgc_table(4))
    }

    /// Single-level cell: one bit, one sense.
    pub fn slc() -> Self {
        Self::from_gray_table("slc", 1, inverted_brgc_table(1))
    }

    /// The conventional coding for a given bits-per-cell (the paper's
    /// defaults: SLC/MLC/TLC-1-2-4/QLC).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=4`.
    pub fn conventional(bits: u8) -> Self {
        match bits {
            1 => Self::slc(),
            2 => Self::mlc(),
            3 => Self::tlc_124(),
            4 => Self::qlc(),
            _ => panic!("no conventional coding for {bits} bits per cell"),
        }
    }

    /// Human-readable scheme name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bits stored per cell.
    pub fn bits_per_cell(&self) -> u8 {
        self.bits_per_cell
    }

    /// Number of voltage states in the *full* state space (`2^bits`).
    pub fn state_space(&self) -> usize {
        1 << self.bits_per_cell
    }

    /// Mask of bits readable under this coding.
    pub fn readable_bits(&self) -> u8 {
        self.readable_bits
    }

    /// Whether bit `b` can be read under this coding.
    pub fn is_readable(&self, b: u8) -> bool {
        self.readable_bits & (1 << b) != 0
    }

    /// States cells may occupy under this coding, ascending.
    pub fn live_states(&self) -> &[VoltageState] {
        &self.live_states
    }

    /// The coding table (bit pattern per state index).
    pub fn table(&self) -> &[BitPattern] {
        &self.table
    }

    /// The bit pattern encoded by `state`.
    pub fn pattern(&self, state: VoltageState) -> BitPattern {
        self.table[state.0 as usize]
    }

    /// The state that encodes `pattern`, if this coding is full.
    ///
    /// For merged codings the pattern is matched on readable bits only and
    /// against live states only.
    pub fn state_for(&self, pattern: BitPattern) -> Option<VoltageState> {
        self.live_states.iter().copied().find(|&s| {
            self.table[s.0 as usize].project(self.readable_bits)
                == pattern.project(self.readable_bits)
        })
    }

    /// The read procedure for bit `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not readable under this coding.
    pub fn read_procedure(&self, b: u8) -> &ReadProcedure {
        assert!(
            self.is_readable(b),
            "bit {b} is not readable under coding {}",
            self.name
        );
        &self.reads[b as usize]
    }

    /// Number of sensing operations needed to read bit `b` — the paper's
    /// key latency driver.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not readable under this coding.
    pub fn sense_count(&self, b: u8) -> u32 {
        self.read_procedure(b).sense_count()
    }

    /// Read bit `b` from a cell currently in `state`, via the sensing
    /// procedure (not a table lookup), so tests exercise the actual
    /// hardware mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not readable or `state` is not live.
    pub fn read_bit(&self, state: VoltageState, b: u8) -> u8 {
        assert!(
            self.live_states.contains(&state),
            "state {state} is not live under coding {}",
            self.name
        );
        self.read_procedure(b)
            .decode(state, &self.table, &self.live_states, b)
    }

    /// The state a cell must be programmed to in order to store `pattern`
    /// (all bits), under a full coding.
    ///
    /// # Panics
    ///
    /// Panics if no live state encodes the pattern (cannot happen for full
    /// codings with in-range patterns).
    pub fn program_target(&self, pattern: BitPattern) -> VoltageState {
        self.state_for(pattern).unwrap_or_else(|| {
            panic!(
                "pattern {pattern} not representable under coding {}",
                self.name
            )
        })
    }
}

/// Derive the sensing procedure for bit `b`: one read voltage per boundary
/// between consecutive *live* states whose bit-`b` values differ. The read
/// voltage chosen is the one just below the higher state, which separates
/// the two groups given that only live states are occupied.
fn derive_read_procedure(
    table: &[BitPattern],
    live_states: &[VoltageState],
    b: u8,
) -> ReadProcedure {
    let mut voltages = Vec::new();
    for w in live_states.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if table[lo.0 as usize].bit(b) != table[hi.0 as usize].bit(b) {
            // Voltage index hi-1 separates states <= hi-1 from >= hi.
            voltages.push(hi.0 - 1);
        }
    }
    ReadProcedure { voltages }
}

/// The inverted binary-reflected Gray code table for `bits` bits, with the
/// convention that logical page `k` (0 = LSB) is bit `bits-1-k` of the
/// codeword — this reproduces the paper's Figure 2 (TLC) and Figure 6 (QLC)
/// exactly, including 1/2/4/8 sense counts.
fn inverted_brgc_table(bits: u8) -> Vec<BitPattern> {
    let n = 1u16 << bits;
    (0..n)
        .map(|s| {
            let gray = s ^ (s >> 1);
            let inv = !gray & (n - 1);
            // Reverse bit order so page 0 (LSB) is the bit that flips once.
            let mut out = 0u8;
            for k in 0..bits {
                let cw_bit = (inv >> (bits - 1 - k)) & 1;
                out |= (cw_bit as u8) << k;
            }
            BitPattern(out)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlc_124_matches_paper_figure_2() {
        let c = CodingScheme::tlc_124();
        // (LSB, CSB, MSB) per state S1..S8 from the paper.
        let expected = [
            (1, 1, 1),
            (1, 1, 0),
            (1, 0, 0),
            (1, 0, 1),
            (0, 0, 1),
            (0, 0, 0),
            (0, 1, 0),
            (0, 1, 1),
        ];
        for (s, &(l, cs, m)) in expected.iter().enumerate() {
            let p = c.pattern(VoltageState(s as u8));
            assert_eq!(
                (p.bit(0), p.bit(1), p.bit(2)),
                (l, cs, m),
                "state S{}",
                s + 1
            );
        }
    }

    #[test]
    fn tlc_124_sense_counts_are_1_2_4() {
        let c = CodingScheme::tlc_124();
        assert_eq!(c.sense_count(0), 1);
        assert_eq!(c.sense_count(1), 2);
        assert_eq!(c.sense_count(2), 4);
    }

    #[test]
    fn tlc_124_read_voltages_match_paper() {
        let c = CodingScheme::tlc_124();
        // Paper: LSB = {V4}, CSB = {V2, V6}, MSB = {V1, V3, V5, V7};
        // our indices are 0-based (V1 -> 0).
        assert_eq!(c.read_procedure(0).voltages, vec![3]);
        assert_eq!(c.read_procedure(1).voltages, vec![1, 5]);
        assert_eq!(c.read_procedure(2).voltages, vec![0, 2, 4, 6]);
    }

    #[test]
    fn tlc_232_sense_counts_are_2_3_2() {
        let c = CodingScheme::tlc_232();
        assert_eq!(c.sense_count(0), 2);
        assert_eq!(c.sense_count(1), 3);
        assert_eq!(c.sense_count(2), 2);
    }

    #[test]
    fn mlc_sense_counts_are_1_2() {
        let c = CodingScheme::mlc();
        assert_eq!(c.sense_count(0), 1);
        assert_eq!(c.sense_count(1), 2);
    }

    #[test]
    fn qlc_sense_counts_are_1_2_4_8() {
        let c = CodingScheme::qlc();
        assert_eq!(c.sense_count(0), 1);
        assert_eq!(c.sense_count(1), 2);
        assert_eq!(c.sense_count(2), 4);
        assert_eq!(c.sense_count(3), 8);
    }

    #[test]
    fn sensing_decode_agrees_with_table_for_all_codings() {
        for c in [
            CodingScheme::slc(),
            CodingScheme::mlc(),
            CodingScheme::tlc_124(),
            CodingScheme::tlc_232(),
            CodingScheme::qlc(),
        ] {
            for &s in c.live_states() {
                for b in 0..c.bits_per_cell() {
                    assert_eq!(
                        c.read_bit(s, b),
                        c.pattern(s).bit(b),
                        "coding {} state {s} bit {b}",
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn program_target_roundtrips() {
        let c = CodingScheme::tlc_124();
        for bits in 0..8u8 {
            let p = BitPattern(bits);
            let s = c.program_target(p);
            assert_eq!(c.pattern(s), p);
        }
    }

    #[test]
    fn erased_state_reads_all_ones() {
        for c in [
            CodingScheme::mlc(),
            CodingScheme::tlc_124(),
            CodingScheme::tlc_232(),
            CodingScheme::qlc(),
        ] {
            for b in 0..c.bits_per_cell() {
                assert_eq!(c.read_bit(VoltageState::ERASED, b), 1);
            }
        }
    }

    #[test]
    fn paper_example_100_programs_to_s5() {
        // Section III-A: writing LSB=0, CSB=0, MSB=1 puts the cell in S5.
        let c = CodingScheme::tlc_124();
        let s = c.program_target(BitPattern(0b100));
        assert_eq!(s, VoltageState(4)); // S5 is 0-based state 4
    }

    #[test]
    #[should_panic(expected = "Gray code")]
    fn non_gray_table_rejected() {
        // Swap two entries to break adjacency.
        let mut t = inverted_brgc_table(2);
        t.swap(1, 2);
        let _ = CodingScheme::from_gray_table("bad", 2, t);
    }

    #[test]
    #[should_panic(expected = "all-ones")]
    fn erased_state_must_be_all_ones() {
        let t = vec![
            BitPattern(0b00),
            BitPattern(0b01),
            BitPattern(0b11),
            BitPattern(0b10),
        ];
        let _ = CodingScheme::from_gray_table("bad", 2, t);
    }

    #[test]
    #[should_panic(expected = "not readable")]
    fn unreadable_bit_rejected() {
        let c = CodingScheme::from_parts(
            "merged",
            3,
            0b110, // LSB not readable
            CodingScheme::tlc_124().table().to_vec(),
            vec![
                VoltageState(4),
                VoltageState(5),
                VoltageState(6),
                VoltageState(7),
            ],
        );
        let _ = c.sense_count(0);
    }

    #[test]
    fn merged_tlc_reads_with_fewer_senses() {
        // The paper's Figure 5 merged coding: states S5..S8, LSB invalid.
        let c = CodingScheme::from_parts(
            "tlc-ida-cm",
            3,
            0b110,
            CodingScheme::tlc_124().table().to_vec(),
            vec![
                VoltageState(4),
                VoltageState(5),
                VoltageState(6),
                VoltageState(7),
            ],
        );
        assert_eq!(c.sense_count(1), 1); // CSB: V6 only
        assert_eq!(c.sense_count(2), 2); // MSB: V5, V7
        assert_eq!(c.read_procedure(1).voltages, vec![5]);
        assert_eq!(c.read_procedure(2).voltages, vec![4, 6]);
        // Decodes still correct on the live states.
        for &s in c.live_states() {
            assert_eq!(c.read_bit(s, 1), c.pattern(s).bit(1));
            assert_eq!(c.read_bit(s, 2), c.pattern(s).bit(2));
        }
    }
}
