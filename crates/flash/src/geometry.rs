//! Physical organization of the flash array behind an SSD.
//!
//! The hierarchy follows the paper's Table II:
//!
//! ```text
//! SSD ─ channels ─ chips ─ dies ─ planes ─ blocks ─ wordlines ─ cells
//! ```
//!
//! A wordline of a `b` bits-per-cell device carries `b` logical pages
//! (LSB, CSB, MSB for TLC). A block is the erase unit; a page is the
//! read/program unit.

/// The static geometry of an SSD's flash array.
///
/// All counts are *per parent* (e.g. `dies_per_chip` is dies in one chip).
/// The default experiment geometry is a scaled-down version of the paper's
/// 512 GB device; [`Geometry::paper_512gb`] constructs the full-size one.
///
/// # Example
///
/// ```
/// use ida_flash::Geometry;
///
/// let g = Geometry::paper_512gb();
/// assert_eq!(g.total_pages() * g.page_size_bytes as u64,
///            550_829_555_712); // ~513 GiB of raw TLC capacity
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Number of channels connecting flash chips to the controller.
    pub channels: u32,
    /// Flash chips attached to each channel.
    pub chips_per_channel: u32,
    /// Dies in each chip (a die is the unit that executes one array
    /// operation at a time).
    pub dies_per_chip: u32,
    /// Planes in each die.
    pub planes_per_die: u32,
    /// Blocks in each plane (the erase unit).
    pub blocks_per_plane: u32,
    /// Wordlines in each block.
    pub wordlines_per_block: u32,
    /// Bits stored per cell: 1 = SLC, 2 = MLC, 3 = TLC, 4 = QLC.
    /// Equals the number of logical pages carried by one wordline.
    pub bits_per_cell: u32,
    /// Logical page size in bytes.
    pub page_size_bytes: u32,
}

ida_snap::snap_struct!(Geometry {
    channels,
    chips_per_channel,
    dies_per_chip,
    planes_per_die,
    blocks_per_plane,
    wordlines_per_block,
    bits_per_cell,
    page_size_bytes,
});

impl Geometry {
    /// The paper's baseline 512 GB TLC SSD (Table II): 4 channels,
    /// 4 chips/channel, 2 dies/chip, 2 planes/die, 5472 blocks/plane,
    /// 64 wordlines/block (192 pages), 8 KB pages.
    pub fn paper_512gb() -> Self {
        Geometry {
            channels: 4,
            chips_per_channel: 4,
            dies_per_chip: 2,
            planes_per_die: 2,
            blocks_per_plane: 5472,
            wordlines_per_block: 64,
            bits_per_cell: 3,
            page_size_bytes: 8 * 1024,
        }
    }

    /// A 1/64-scale version of the paper geometry used by the default
    /// experiment harness: identical channel/chip/die/plane structure and
    /// identical blocks, but 86 blocks per plane (~8 GB). Keeping the
    /// parallelism structure identical preserves contention behaviour while
    /// letting the suite run quickly.
    pub fn scaled_8gb() -> Self {
        Geometry {
            blocks_per_plane: 86,
            ..Self::paper_512gb()
        }
    }

    /// A tiny geometry for unit tests: 2 channels, 1 chip/channel, 1 die,
    /// 1 plane, 64 blocks, 16 wordlines, TLC, 4 KB pages.
    pub fn tiny() -> Self {
        Geometry {
            channels: 2,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 1,
            blocks_per_plane: 64,
            wordlines_per_block: 16,
            bits_per_cell: 3,
            page_size_bytes: 4 * 1024,
        }
    }

    /// Replace the bits-per-cell (and thus pages-per-wordline) of this
    /// geometry, e.g. to derive an MLC or QLC variant of the same array.
    pub fn with_bits_per_cell(self, bits: u32) -> Self {
        assert!((1..=4).contains(&bits), "bits per cell must be 1..=4");
        Geometry {
            bits_per_cell: bits,
            ..self
        }
    }

    /// Total number of chips in the SSD.
    pub fn total_chips(&self) -> u32 {
        self.channels * self.chips_per_channel
    }

    /// Total number of dies in the SSD.
    pub fn total_dies(&self) -> u32 {
        self.total_chips() * self.dies_per_chip
    }

    /// Total number of planes in the SSD.
    pub fn total_planes(&self) -> u32 {
        self.total_dies() * self.planes_per_die
    }

    /// Total number of blocks in the SSD.
    pub fn total_blocks(&self) -> u32 {
        self.total_planes() * self.blocks_per_plane
    }

    /// Pages carried by one block (`wordlines × bits_per_cell`).
    pub fn pages_per_block(&self) -> u32 {
        self.wordlines_per_block * self.bits_per_cell
    }

    /// Total number of pages in the SSD.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() as u64 * self.pages_per_block() as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_size_bytes as u64
    }

    /// Validates internal consistency; panics with a descriptive message on
    /// nonsensical configurations (zero-sized dimensions etc.).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `bits_per_cell` is outside `1..=4`.
    pub fn validate(&self) {
        assert!(self.channels > 0, "geometry: channels must be > 0");
        assert!(
            self.chips_per_channel > 0,
            "geometry: chips_per_channel must be > 0"
        );
        assert!(
            self.dies_per_chip > 0,
            "geometry: dies_per_chip must be > 0"
        );
        assert!(
            self.planes_per_die > 0,
            "geometry: planes_per_die must be > 0"
        );
        assert!(
            self.blocks_per_plane > 0,
            "geometry: blocks_per_plane must be > 0"
        );
        assert!(
            self.wordlines_per_block > 0,
            "geometry: wordlines_per_block must be > 0"
        );
        assert!(
            (1..=4).contains(&self.bits_per_cell),
            "geometry: bits_per_cell must be 1..=4"
        );
        assert!(
            self.page_size_bytes > 0,
            "geometry: page_size_bytes must be > 0"
        );
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Self::scaled_8gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_table_ii() {
        let g = Geometry::paper_512gb();
        g.validate();
        assert_eq!(g.total_chips(), 16);
        assert_eq!(g.total_dies(), 32);
        assert_eq!(g.total_planes(), 64);
        // 350,208 blocks as quoted in Section III-C.
        assert_eq!(g.total_blocks(), 350_208);
        assert_eq!(g.pages_per_block(), 192);
    }

    #[test]
    fn paper_capacity_is_512gb_class() {
        let g = Geometry::paper_512gb();
        let gb = g.capacity_bytes() as f64 / 1e9;
        assert!(gb > 512.0 && gb < 560.0, "capacity {gb} GB out of range");
    }

    #[test]
    fn pages_per_block_scales_with_bits_per_cell() {
        let g = Geometry::tiny();
        assert_eq!(g.pages_per_block(), 48);
        assert_eq!(g.with_bits_per_cell(2).pages_per_block(), 32);
        assert_eq!(g.with_bits_per_cell(4).pages_per_block(), 64);
    }

    #[test]
    fn scaled_geometry_keeps_parallelism() {
        let s = Geometry::scaled_8gb();
        let p = Geometry::paper_512gb();
        assert_eq!(s.total_dies(), p.total_dies());
        assert_eq!(s.planes_per_die, p.planes_per_die);
        assert_eq!(s.pages_per_block(), p.pages_per_block());
    }

    #[test]
    #[should_panic(expected = "bits per cell")]
    fn with_bits_per_cell_rejects_plc() {
        let _ = Geometry::tiny().with_bits_per_cell(5);
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn validate_rejects_zero_channels() {
        let g = Geometry {
            channels: 0,
            ..Geometry::tiny()
        };
        g.validate();
    }
}
