//! Program-interference error model.
//!
//! Applying IDA coding re-programs wordlines in place (voltage adjustment),
//! and the repeated high-voltage pulses can disturb cells in the same and
//! neighboring wordlines. The paper does not characterize a specific device;
//! instead its evaluation parameterizes the effect as the probability that a
//! reprogrammed page ends up corrupted beyond light ECC repair and must be
//! written back to a new block (systems IDA-Coding-E0 … E80, Section V-B).
//!
//! This module provides that Bernoulli model plus a raw-bit-error-rate
//! helper used by the read-retry experiments (Section V-F).

use ida_obs::rng::Rng64;

/// Bernoulli page-corruption model for voltage adjustment.
///
/// `IDA-Coding-E20` in the paper corresponds to
/// `InterferenceModel::new(0.20)`.
#[derive(Debug, Clone)]
pub struct InterferenceModel {
    corrupt_prob: f64,
    rng_seed: u64,
    rng: Rng64,
}

impl InterferenceModel {
    /// A model in which each page reprogrammed by IDA coding is corrupted
    /// with probability `corrupt_prob`, seeded at zero. Anything that
    /// needs stream independence (sweep cells in particular) must use
    /// [`InterferenceModel::with_seed`] with a derived per-cell seed.
    ///
    /// # Panics
    ///
    /// Panics if `corrupt_prob` is not within `0.0..=1.0`.
    pub fn new(corrupt_prob: f64) -> Self {
        Self::with_seed(corrupt_prob, 0)
    }

    /// Like [`InterferenceModel::new`] with an explicit RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `corrupt_prob` is not within `0.0..=1.0`.
    pub fn with_seed(corrupt_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&corrupt_prob),
            "corruption probability must be in [0, 1], got {corrupt_prob}"
        );
        InterferenceModel {
            corrupt_prob,
            rng_seed: seed,
            rng: Rng64::seed_from_u64(seed),
        }
    }

    /// The paper's headline configuration (20 % of reprogrammed pages
    /// corrupted).
    pub fn paper_e20() -> Self {
        Self::new(0.20)
    }

    /// The configured corruption probability.
    pub fn corrupt_prob(&self) -> f64 {
        self.corrupt_prob
    }

    /// Sample whether one reprogrammed page is corrupted by the adjustment.
    pub fn page_corrupted(&mut self) -> bool {
        self.rng.gen_bool(self.corrupt_prob)
    }

    /// Reset the model's RNG to its seed so a run can be replayed.
    pub fn reset(&mut self) {
        self.rng = Rng64::seed_from_u64(self.rng_seed);
    }
}

// The live RNG is serialized (not just the seed) so a restored model
// continues the exact draw sequence of the captured one.
ida_snap::snap_struct!(InterferenceModel {
    corrupt_prob,
    rng_seed,
    rng,
});

impl PartialEq for InterferenceModel {
    fn eq(&self, other: &Self) -> bool {
        self.corrupt_prob == other.corrupt_prob && self.rng_seed == other.rng_seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_corrupts() {
        let mut m = InterferenceModel::new(0.0);
        assert!((0..1000).all(|_| !m.page_corrupted()));
    }

    #[test]
    fn one_rate_always_corrupts() {
        let mut m = InterferenceModel::new(1.0);
        assert!((0..1000).all(|_| m.page_corrupted()));
    }

    #[test]
    fn rate_is_respected_statistically() {
        let mut m = InterferenceModel::new(0.2);
        let hits = (0..20_000).filter(|_| m.page_corrupted()).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.2).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    fn reset_replays_the_same_sequence() {
        let mut m = InterferenceModel::new(0.5);
        let first: Vec<bool> = (0..64).map(|_| m.page_corrupted()).collect();
        m.reset();
        let second: Vec<bool> = (0..64).map(|_| m.page_corrupted()).collect();
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_rate_rejected() {
        let _ = InterferenceModel::new(1.5);
    }
}
