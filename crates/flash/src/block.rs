//! A cell-accurate flash block: an erase unit of wordlines with the real
//! programming constraints.
//!
//! The SSD simulator tracks blocks at page granularity for speed; this
//! model is the bit-level ground truth it is validated against. It
//! enforces what hardware enforces:
//!
//! - pages program **in order** (page `p` belongs to wordline
//!   `p / bits_per_cell`, bit `p % bits_per_cell`), and a wordline's cells
//!   are committed once its last page arrives (one-shot programming);
//! - reading an unwritten page returns all-ones (erased state);
//! - a wordline can be **voltage-adjusted** in place (IDA coding), after
//!   which its remaining bits read with the merged coding's sense counts;
//! - erase wipes everything, restores the conventional coding, and
//!   increments the wear counter.

use crate::coding::{CodingScheme, VoltageState};
use crate::wordline::{Wordline, WordlineError};
use std::fmt;
use std::sync::Arc;

/// Errors returned by block operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockError {
    /// Pages must be programmed strictly in order.
    OutOfOrderProgram {
        /// The page offset that should have been written next.
        expected: u32,
        /// The offset actually supplied.
        got: u32,
    },
    /// The block is full.
    Full,
    /// A wordline-level failure (width mismatch, leftward move, …).
    Wordline(WordlineError),
    /// The requested page has not been programmed yet.
    NotProgrammed,
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::OutOfOrderProgram { expected, got } => {
                write!(
                    f,
                    "pages program in order: expected offset {expected}, got {got}"
                )
            }
            BlockError::Full => write!(f, "block is fully programmed"),
            BlockError::Wordline(e) => write!(f, "wordline error: {e}"),
            BlockError::NotProgrammed => write!(f, "page has not been programmed"),
        }
    }
}

impl std::error::Error for BlockError {}

impl From<WordlineError> for BlockError {
    fn from(e: WordlineError) -> Self {
        BlockError::Wordline(e)
    }
}

/// A cell-accurate erase unit.
#[derive(Debug, Clone)]
pub struct Block {
    wordlines: Vec<Wordline>,
    /// Staged page data awaiting one-shot wordline programming, keyed by
    /// bit index within the in-progress wordline.
    staged: Vec<Vec<u8>>,
    bits_per_cell: u8,
    width: usize,
    write_ptr: u32,
    erase_count: u32,
}

impl Block {
    /// An erased block of `wordlines` wordlines, `width` cells each, under
    /// the conventional coding for `bits_per_cell`.
    pub fn new(wordlines: u32, width: usize, bits_per_cell: u8) -> Self {
        let coding = Arc::new(CodingScheme::conventional(bits_per_cell));
        Block {
            wordlines: (0..wordlines)
                .map(|_| Wordline::new(width, coding.clone()))
                .collect(),
            staged: Vec::new(),
            bits_per_cell,
            width,
            write_ptr: 0,
            erase_count: 0,
        }
    }

    /// Pages this block can hold.
    pub fn pages(&self) -> u32 {
        self.wordlines.len() as u32 * self.bits_per_cell as u32
    }

    /// The next page offset to program.
    pub fn write_ptr(&self) -> u32 {
        self.write_ptr
    }

    /// Completed erase cycles.
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// Whether every page has been programmed.
    pub fn is_full(&self) -> bool {
        self.write_ptr == self.pages()
    }

    /// Program page `offset` with one bit per cell. Must be called in
    /// strictly increasing offset order; the wordline's cells are charged
    /// when its last page arrives.
    ///
    /// # Errors
    ///
    /// [`BlockError::Full`] when the block has no room,
    /// [`BlockError::OutOfOrderProgram`] on out-of-order writes, or a
    /// wordline error (e.g. wrong width).
    pub fn program(&mut self, offset: u32, bits: Vec<u8>) -> Result<(), BlockError> {
        if self.is_full() {
            return Err(BlockError::Full);
        }
        if offset != self.write_ptr {
            return Err(BlockError::OutOfOrderProgram {
                expected: self.write_ptr,
                got: offset,
            });
        }
        if bits.len() != self.width {
            return Err(BlockError::Wordline(WordlineError::WidthMismatch {
                expected: self.width,
                got: bits.len(),
            }));
        }
        self.staged.push(bits);
        self.write_ptr += 1;
        if self.staged.len() == self.bits_per_cell as usize {
            let wl = (self.write_ptr - 1) / self.bits_per_cell as u32;
            let pages = std::mem::take(&mut self.staged);
            self.wordlines[wl as usize].program(&pages)?;
        }
        Ok(())
    }

    /// Read page `offset` through the sensing procedure, returning its
    /// bits and the number of senses performed.
    ///
    /// # Errors
    ///
    /// [`BlockError::NotProgrammed`] for pages at or beyond the write
    /// pointer (or staged but uncommitted), or a wordline error when the
    /// page's bit was merged away by IDA coding.
    pub fn read(&mut self, offset: u32) -> Result<(Vec<u8>, u32), BlockError> {
        let wl = offset / self.bits_per_cell as u32;
        let bit = (offset % self.bits_per_cell as u32) as u8;
        let committed_wls = self.write_ptr / self.bits_per_cell as u32;
        if wl >= committed_wls {
            return Err(BlockError::NotProgrammed);
        }
        let wordline = &mut self.wordlines[wl as usize];
        let senses = wordline.coding().sense_count(bit);
        let bits = wordline.read(bit)?;
        Ok((bits, senses))
    }

    /// Apply an IDA voltage adjustment to wordline `wl`.
    ///
    /// # Errors
    ///
    /// Propagates wordline errors (leftward moves).
    ///
    /// # Panics
    ///
    /// Panics if `wl` is out of range.
    pub fn adjust_wordline(
        &mut self,
        wl: u32,
        state_map: &[VoltageState],
        merged: Arc<CodingScheme>,
    ) -> Result<usize, BlockError> {
        Ok(self.wordlines[wl as usize].adjust_voltage(state_map, merged)?)
    }

    /// The coding currently governing wordline `wl`.
    pub fn wordline_coding(&self, wl: u32) -> &Arc<CodingScheme> {
        self.wordlines[wl as usize].coding()
    }

    /// Erase the block: all cells to the erased state, conventional coding
    /// restored, wear incremented.
    pub fn erase(&mut self) {
        for wl in &mut self.wordlines {
            wl.erase();
        }
        self.staged.clear();
        self.write_ptr = 0;
        self.erase_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(width: usize, seed: u64) -> Vec<u8> {
        (0..width)
            .map(|i| {
                (((i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed))
                    >> 17) as u8
                    & 1
            })
            .collect()
    }

    #[test]
    fn sequential_program_read_roundtrip() {
        let mut b = Block::new(4, 32, 3);
        let data: Vec<Vec<u8>> = (0..12).map(|i| bits(32, i)).collect();
        for (i, d) in data.iter().enumerate() {
            b.program(i as u32, d.clone()).unwrap();
        }
        assert!(b.is_full());
        for (i, d) in data.iter().enumerate() {
            let (got, senses) = b.read(i as u32).unwrap();
            assert_eq!(&got, d, "page {i}");
            assert_eq!(senses, [1, 2, 4][i % 3]);
        }
    }

    #[test]
    fn out_of_order_program_rejected() {
        let mut b = Block::new(2, 8, 3);
        b.program(0, bits(8, 0)).unwrap();
        assert_eq!(
            b.program(2, bits(8, 1)),
            Err(BlockError::OutOfOrderProgram {
                expected: 1,
                got: 2
            })
        );
    }

    #[test]
    fn full_block_rejects_programs() {
        let mut b = Block::new(1, 4, 2);
        b.program(0, bits(4, 0)).unwrap();
        b.program(1, bits(4, 1)).unwrap();
        assert_eq!(b.program(2, bits(4, 2)), Err(BlockError::Full));
    }

    #[test]
    fn uncommitted_wordline_not_readable() {
        let mut b = Block::new(2, 8, 3);
        b.program(0, bits(8, 0)).unwrap();
        // LSB staged, wordline not yet committed (one-shot programming).
        assert_eq!(b.read(0), Err(BlockError::NotProgrammed));
        b.program(1, bits(8, 1)).unwrap();
        b.program(2, bits(8, 2)).unwrap();
        assert!(b.read(0).is_ok());
    }

    #[test]
    fn erase_resets_and_counts_wear() {
        let mut b = Block::new(2, 8, 3);
        for i in 0..6 {
            b.program(i, bits(8, i as u64)).unwrap();
        }
        b.erase();
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.write_ptr(), 0);
        assert_eq!(b.read(0), Err(BlockError::NotProgrammed));
        // Re-programmable after erase.
        b.program(0, bits(8, 9)).unwrap();
    }

    #[test]
    fn width_mismatch_detected() {
        let mut b = Block::new(1, 8, 3);
        assert!(matches!(
            b.program(0, bits(4, 0)),
            Err(BlockError::Wordline(WordlineError::WidthMismatch { .. }))
        ));
    }
}
