//! A functional, cell-accurate wordline model.
//!
//! The SSD simulator works at page granularity for speed, but correctness of
//! the coding machinery (and of the IDA merge in particular) is established
//! on this model: cells hold real [`VoltageState`]s, programming uses the
//! coding's program targets, reads go through the sensing procedure, and
//! voltage adjustment applies a state map that must be ISPP-feasible
//! (right-only moves).

use crate::coding::{BitPattern, CodingScheme, VoltageState};
use std::fmt;
use std::sync::Arc;

/// Errors returned by wordline operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordlineError {
    /// A page buffer's length does not match the wordline width.
    WidthMismatch {
        /// Cells in the wordline.
        expected: usize,
        /// Bits supplied.
        got: usize,
    },
    /// Programming was attempted on a non-erased wordline.
    NotErased,
    /// A state map tried to move a cell to a lower voltage state, which
    /// ISPP (charge injection only) cannot do.
    LeftwardMove {
        /// The cell's current state.
        from: VoltageState,
        /// The requested target state.
        to: VoltageState,
    },
    /// A read was attempted for a bit the current coding cannot recover.
    BitNotReadable(u8),
}

impl fmt::Display for WordlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WordlineError::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "page buffer holds {got} bits, wordline has {expected} cells"
                )
            }
            WordlineError::NotErased => write!(f, "wordline must be erased before programming"),
            WordlineError::LeftwardMove { from, to } => {
                write!(f, "ISPP cannot move a cell from {from} down to {to}")
            }
            WordlineError::BitNotReadable(b) => {
                write!(f, "bit {b} is not readable under the current coding")
            }
        }
    }
}

impl std::error::Error for WordlineError {}

/// A wordline: a row of cells sharing read/program operations, carrying one
/// logical page per bit of the cell.
#[derive(Debug, Clone)]
pub struct Wordline {
    cells: Vec<VoltageState>,
    coding: Arc<CodingScheme>,
    programmed: bool,
    /// Cumulative count of sensing operations performed by reads, for
    /// asserting the latency model against actual behaviour.
    senses_performed: u64,
}

impl Wordline {
    /// Create an erased wordline of `width` cells under `coding`.
    pub fn new(width: usize, coding: Arc<CodingScheme>) -> Self {
        Wordline {
            cells: vec![VoltageState::ERASED; width],
            coding,
            programmed: false,
            senses_performed: 0,
        }
    }

    /// Number of cells.
    pub fn width(&self) -> usize {
        self.cells.len()
    }

    /// The coding currently governing this wordline.
    pub fn coding(&self) -> &Arc<CodingScheme> {
        &self.coding
    }

    /// Whether data has been programmed since the last erase.
    pub fn is_programmed(&self) -> bool {
        self.programmed
    }

    /// Total sensing operations performed by reads so far.
    pub fn senses_performed(&self) -> u64 {
        self.senses_performed
    }

    /// The raw state of cell `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cell_state(&self, i: usize) -> VoltageState {
        self.cells[i]
    }

    /// Program all logical pages at once. `pages[b][i]` is bit `b` of cell
    /// `i` (values 0/1).
    ///
    /// # Errors
    ///
    /// Returns [`WordlineError::NotErased`] if already programmed, or
    /// [`WordlineError::WidthMismatch`] if any buffer has the wrong length.
    ///
    /// # Panics
    ///
    /// Panics if `pages.len()` differs from the coding's bits-per-cell.
    pub fn program(&mut self, pages: &[Vec<u8>]) -> Result<(), WordlineError> {
        assert_eq!(
            pages.len(),
            self.coding.bits_per_cell() as usize,
            "one page buffer per cell bit required"
        );
        if self.programmed {
            return Err(WordlineError::NotErased);
        }
        for page in pages {
            if page.len() != self.cells.len() {
                return Err(WordlineError::WidthMismatch {
                    expected: self.cells.len(),
                    got: page.len(),
                });
            }
        }
        for (i, cell) in self.cells.iter_mut().enumerate() {
            let mut pat = 0u8;
            for (b, page) in pages.iter().enumerate() {
                pat |= (page[i] & 1) << b;
            }
            *cell = self.coding.program_target(BitPattern(pat));
        }
        self.programmed = true;
        Ok(())
    }

    /// Read logical page `bit` through the sensing procedure, returning one
    /// bit value per cell and recording the senses performed.
    ///
    /// # Errors
    ///
    /// Returns [`WordlineError::BitNotReadable`] if the current coding
    /// cannot recover `bit` (e.g. the LSB of an IDA-merged wordline).
    pub fn read(&mut self, bit: u8) -> Result<Vec<u8>, WordlineError> {
        if !self.coding.is_readable(bit) {
            return Err(WordlineError::BitNotReadable(bit));
        }
        self.senses_performed += self.coding.sense_count(bit) as u64;
        Ok(self
            .cells
            .iter()
            .map(|&s| self.coding.read_bit(s, bit))
            .collect())
    }

    /// Erase the wordline: all cells return to the erased state and the
    /// conventional coding for this bit density is restored.
    pub fn erase(&mut self) {
        let bits = self.coding.bits_per_cell();
        for c in &mut self.cells {
            *c = VoltageState::ERASED;
        }
        self.coding = Arc::new(CodingScheme::conventional(bits));
        self.programmed = false;
    }

    /// Apply a voltage adjustment: move every cell through `state_map`
    /// (`state_map[old] = new`) and switch to `new_coding`. This is the
    /// physical half of applying IDA coding to a wordline.
    ///
    /// Validates ISPP feasibility (no leftward moves) *before* touching any
    /// cell, so a failed call leaves the wordline unchanged.
    ///
    /// Returns the number of cells whose state actually changed (the ISPP
    /// work performed).
    ///
    /// # Errors
    ///
    /// Returns [`WordlineError::LeftwardMove`] if the map would lower any
    /// occupied cell's state.
    ///
    /// # Panics
    ///
    /// Panics if `state_map` does not cover the coding's state space.
    pub fn adjust_voltage(
        &mut self,
        state_map: &[VoltageState],
        new_coding: Arc<CodingScheme>,
    ) -> Result<usize, WordlineError> {
        assert_eq!(
            state_map.len(),
            self.coding.state_space(),
            "state map must cover the full state space"
        );
        for &cell in &self.cells {
            let target = state_map[cell.0 as usize];
            if target < cell {
                return Err(WordlineError::LeftwardMove {
                    from: cell,
                    to: target,
                });
            }
        }
        let mut moved = 0;
        for cell in &mut self.cells {
            let target = state_map[cell.0 as usize];
            if target != *cell {
                *cell = target;
                moved += 1;
            }
        }
        self.coding = new_coding;
        Ok(moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlc() -> Arc<CodingScheme> {
        Arc::new(CodingScheme::tlc_124())
    }

    fn bits(n: usize, seed: u64) -> Vec<u8> {
        // Small deterministic pseudo-random bit pattern.
        (0..n)
            .map(|i| {
                (((i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed))
                    >> 33) as u8
                    & 1
            })
            .collect()
    }

    #[test]
    fn program_then_read_roundtrips_all_pages() {
        let mut wl = Wordline::new(64, tlc());
        let pages = vec![bits(64, 1), bits(64, 2), bits(64, 3)];
        wl.program(&pages).unwrap();
        for b in 0..3u8 {
            assert_eq!(wl.read(b).unwrap(), pages[b as usize]);
        }
    }

    #[test]
    fn erased_wordline_reads_ones() {
        let mut wl = Wordline::new(8, tlc());
        assert_eq!(wl.read(2).unwrap(), vec![1; 8]);
    }

    #[test]
    fn double_program_rejected() {
        let mut wl = Wordline::new(4, tlc());
        let pages = vec![vec![0; 4], vec![1; 4], vec![0; 4]];
        wl.program(&pages).unwrap();
        assert_eq!(wl.program(&pages), Err(WordlineError::NotErased));
    }

    #[test]
    fn erase_restores_programmability() {
        let mut wl = Wordline::new(4, tlc());
        let pages = vec![vec![0; 4], vec![1; 4], vec![0; 4]];
        wl.program(&pages).unwrap();
        wl.erase();
        assert!(!wl.is_programmed());
        wl.program(&pages).unwrap();
    }

    #[test]
    fn width_mismatch_detected() {
        let mut wl = Wordline::new(4, tlc());
        let pages = vec![vec![0; 4], vec![1; 3], vec![0; 4]];
        assert_eq!(
            wl.program(&pages),
            Err(WordlineError::WidthMismatch {
                expected: 4,
                got: 3
            })
        );
    }

    #[test]
    fn sense_accounting_matches_coding() {
        let mut wl = Wordline::new(16, tlc());
        let pages = vec![bits(16, 7), bits(16, 8), bits(16, 9)];
        wl.program(&pages).unwrap();
        wl.read(0).unwrap();
        wl.read(1).unwrap();
        wl.read(2).unwrap();
        assert_eq!(wl.senses_performed(), 1 + 2 + 4);
    }

    #[test]
    fn leftward_adjustment_rejected_and_atomic() {
        let mut wl = Wordline::new(4, tlc());
        let pages = vec![vec![0; 4], vec![0; 4], vec![1; 4]]; // all cells S5
        wl.program(&pages).unwrap();
        // Identity map except S5 -> S1 (leftward).
        let mut map: Vec<VoltageState> = (0..8).map(VoltageState).collect();
        map[4] = VoltageState(0);
        let err = wl.adjust_voltage(&map, tlc()).unwrap_err();
        assert!(matches!(err, WordlineError::LeftwardMove { .. }));
        assert_eq!(wl.cell_state(0), VoltageState(4)); // unchanged
    }

    #[test]
    fn paper_merge_preserves_csb_and_msb() {
        // Program random data, merge S1..S4 into S8..S5 (the Figure 5 map),
        // and verify CSB/MSB survive while LSB becomes unreadable.
        let mut wl = Wordline::new(128, tlc());
        let pages = vec![bits(128, 11), bits(128, 22), bits(128, 33)];
        wl.program(&pages).unwrap();

        let map: Vec<VoltageState> = vec![7, 6, 5, 4, 4, 5, 6, 7]
            .into_iter()
            .map(VoltageState)
            .collect();
        let merged = Arc::new(CodingScheme::from_parts(
            "tlc-ida-cm",
            3,
            0b110,
            CodingScheme::tlc_124().table().to_vec(),
            (4..8).map(VoltageState).collect(),
        ));
        let moved = wl.adjust_voltage(&map, merged).unwrap();
        assert!(moved > 0);
        assert_eq!(wl.read(1).unwrap(), pages[1], "CSB preserved");
        assert_eq!(wl.read(2).unwrap(), pages[2], "MSB preserved");
        assert_eq!(wl.read(0), Err(WordlineError::BitNotReadable(0)));
    }
}
