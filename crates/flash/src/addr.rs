//! Strongly-typed physical flash addresses.
//!
//! Addresses are flat indices wrapped in newtypes so that a block index can
//! never be confused with a page index ([C-NEWTYPE]). Conversions between
//! levels of the hierarchy go through a [`Geometry`].
//!
//! The flat orderings are canonical:
//!
//! - dies are numbered channel-major: `die = (channel * chips_per_channel +
//!   chip) * dies_per_chip + die_in_chip`;
//! - planes, blocks, wordlines and pages nest inside in the obvious way;
//! - page `p` within a block belongs to wordline `p / bits_per_cell` and has
//!   page type `p % bits_per_cell` (`0` = LSB, `1` = CSB, `2` = MSB, …).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use crate::geometry::Geometry;
use std::fmt;

/// The kind of logical page a physical page is, within its wordline.
///
/// The ordinal value is the bit position in the cell: `Lsb = 0` is the
/// fastest-to-read page, higher ordinals need more sensing operations under
/// conventional coding. For QLC the four types are, in paper terms,
/// Bit 1 → `Lsb`, Bit 2 → `Csb`, Bit 3 → `Msb`, Bit 4 → `Top`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageType {
    /// Least-significant bit page (1 sense under conventional coding).
    Lsb,
    /// Center-significant bit page (TLC and up).
    Csb,
    /// Most-significant bit page (MLC: the second bit; TLC: the third).
    Msb,
    /// Fourth bit page (QLC only).
    Top,
}

impl PageType {
    /// All page types, in bit order.
    pub const ALL: [PageType; 4] = [PageType::Lsb, PageType::Csb, PageType::Msb, PageType::Top];

    /// The bit index within the cell (0-based).
    pub fn bit_index(self) -> u8 {
        match self {
            PageType::Lsb => 0,
            PageType::Csb => 1,
            PageType::Msb => 2,
            PageType::Top => 3,
        }
    }

    /// The page type for bit index `bit` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 4`.
    pub fn from_bit_index(bit: u8) -> Self {
        match bit {
            0 => PageType::Lsb,
            1 => PageType::Csb,
            2 => PageType::Msb,
            3 => PageType::Top,
            _ => panic!("page bit index {bit} out of range (max 3)"),
        }
    }

    /// Short label used in reports ("LSB", "CSB", …).
    pub fn label(self) -> &'static str {
        match self {
            PageType::Lsb => "LSB",
            PageType::Csb => "CSB",
            PageType::Msb => "MSB",
            PageType::Top => "TOP",
        }
    }
}

impl fmt::Display for PageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

macro_rules! flat_addr {
    ($(#[$doc:meta])* $name:ident($repr:ty)) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $repr);

        impl $name {
            /// The raw flat index.
            pub fn index(self) -> $repr {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                $name(v)
            }
        }

        impl ida_snap::Snap for $name {
            fn encode(&self, w: &mut ida_snap::Writer) {
                ida_snap::Snap::encode(&self.0, w);
            }
            fn decode(r: &mut ida_snap::Reader<'_>) -> Result<Self, ida_snap::SnapError> {
                Ok($name(<$repr as ida_snap::Snap>::decode(r)?))
            }
        }
    };
}

ida_snap::snap_enum!(PageType {
    0 => PageType::Lsb,
    1 => PageType::Csb,
    2 => PageType::Msb,
    3 => PageType::Top,
});

flat_addr!(
    /// Flat die index across the whole SSD (channel-major).
    DieAddr(u32)
);
flat_addr!(
    /// Flat plane index across the whole SSD.
    PlaneAddr(u32)
);
flat_addr!(
    /// Flat block index across the whole SSD.
    BlockAddr(u32)
);
flat_addr!(
    /// Flat wordline index across the whole SSD.
    WordlineAddr(u64)
);
flat_addr!(
    /// Flat physical page index across the whole SSD.
    PageAddr(u64)
);

impl DieAddr {
    /// The channel this die's chip hangs off.
    pub fn channel(self, g: &Geometry) -> u32 {
        self.0 / (g.chips_per_channel * g.dies_per_chip)
    }

    /// The flat chip index of this die.
    pub fn chip(self, g: &Geometry) -> u32 {
        self.0 / g.dies_per_chip
    }
}

impl PlaneAddr {
    /// The die containing this plane.
    pub fn die(self, g: &Geometry) -> DieAddr {
        DieAddr(self.0 / g.planes_per_die)
    }
}

impl BlockAddr {
    /// The plane containing this block.
    pub fn plane(self, g: &Geometry) -> PlaneAddr {
        PlaneAddr(self.0 / g.blocks_per_plane)
    }

    /// The die containing this block.
    pub fn die(self, g: &Geometry) -> DieAddr {
        self.plane(g).die(g)
    }

    /// The channel serving this block.
    pub fn channel(self, g: &Geometry) -> u32 {
        self.die(g).channel(g)
    }

    /// The first page of this block.
    pub fn first_page(self, g: &Geometry) -> PageAddr {
        PageAddr(self.0 as u64 * g.pages_per_block() as u64)
    }

    /// The page at offset `off` within this block.
    ///
    /// # Panics
    ///
    /// Panics if `off >= pages_per_block`.
    pub fn page(self, g: &Geometry, off: u32) -> PageAddr {
        assert!(
            off < g.pages_per_block(),
            "page offset {off} out of range for block with {} pages",
            g.pages_per_block()
        );
        PageAddr(self.0 as u64 * g.pages_per_block() as u64 + off as u64)
    }

    /// The wordline at offset `wl` within this block.
    ///
    /// # Panics
    ///
    /// Panics if `wl >= wordlines_per_block`.
    pub fn wordline(self, g: &Geometry, wl: u32) -> WordlineAddr {
        assert!(
            wl < g.wordlines_per_block,
            "wordline offset {wl} out of range ({} per block)",
            g.wordlines_per_block
        );
        WordlineAddr(self.0 as u64 * g.wordlines_per_block as u64 + wl as u64)
    }
}

impl WordlineAddr {
    /// The block containing this wordline.
    pub fn block(self, g: &Geometry) -> BlockAddr {
        BlockAddr((self.0 / g.wordlines_per_block as u64) as u32)
    }

    /// Wordline offset inside its block.
    pub fn offset_in_block(self, g: &Geometry) -> u32 {
        (self.0 % g.wordlines_per_block as u64) as u32
    }

    /// The page of type `ty` on this wordline.
    ///
    /// # Panics
    ///
    /// Panics if `ty` does not exist at this geometry's bits-per-cell (e.g.
    /// `Msb` on an MLC device is valid — bit index 2 is not).
    pub fn page(self, g: &Geometry, ty: PageType) -> PageAddr {
        assert!(
            (ty.bit_index() as u32) < g.bits_per_cell,
            "page type {ty} does not exist on a {}-bit cell",
            g.bits_per_cell
        );
        let block = self.block(g);
        let off = self.offset_in_block(g) * g.bits_per_cell + ty.bit_index() as u32;
        block.page(g, off)
    }
}

impl PageAddr {
    /// The block containing this page.
    pub fn block(self, g: &Geometry) -> BlockAddr {
        BlockAddr((self.0 / g.pages_per_block() as u64) as u32)
    }

    /// Page offset inside its block.
    pub fn offset_in_block(self, g: &Geometry) -> u32 {
        (self.0 % g.pages_per_block() as u64) as u32
    }

    /// The wordline carrying this page.
    pub fn wordline(self, g: &Geometry) -> WordlineAddr {
        let block = self.block(g);
        block.wordline(g, self.offset_in_block(g) / g.bits_per_cell)
    }

    /// Which of the wordline's logical pages this is (LSB/CSB/MSB/TOP).
    pub fn page_type(self, g: &Geometry) -> PageType {
        PageType::from_bit_index((self.offset_in_block(g) % g.bits_per_cell) as u8)
    }

    /// The die containing this page (the resource serialized during array
    /// operations).
    pub fn die(self, g: &Geometry) -> DieAddr {
        self.block(g).die(g)
    }

    /// The channel serving this page (the resource serialized during data
    /// transfer).
    pub fn channel(self, g: &Geometry) -> u32 {
        self.block(g).channel(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Geometry {
        Geometry::tiny() // 2ch x 1chip x 1die x 1plane x 64 blocks x 16 WL, TLC
    }

    #[test]
    fn page_roundtrip_through_block() {
        let g = g();
        for block in [0u32, 1, 63] {
            let b = BlockAddr(block);
            for off in [0u32, 1, 47] {
                let p = b.page(&g, off);
                assert_eq!(p.block(&g), b);
                assert_eq!(p.offset_in_block(&g), off);
            }
        }
    }

    #[test]
    fn page_type_cycles_lsb_csb_msb() {
        let g = g();
        let b = BlockAddr(5);
        assert_eq!(b.page(&g, 0).page_type(&g), PageType::Lsb);
        assert_eq!(b.page(&g, 1).page_type(&g), PageType::Csb);
        assert_eq!(b.page(&g, 2).page_type(&g), PageType::Msb);
        assert_eq!(b.page(&g, 3).page_type(&g), PageType::Lsb);
        assert_eq!(b.page(&g, 47).page_type(&g), PageType::Msb);
    }

    #[test]
    fn wordline_page_mapping_is_consistent() {
        let g = g();
        let b = BlockAddr(7);
        let wl = b.wordline(&g, 3);
        for ty in [PageType::Lsb, PageType::Csb, PageType::Msb] {
            let p = wl.page(&g, ty);
            assert_eq!(p.wordline(&g), wl);
            assert_eq!(p.page_type(&g), ty);
        }
    }

    #[test]
    fn die_and_channel_decomposition() {
        let g = Geometry::paper_512gb();
        // Channel-major: dies 0..8 are channel 0 (4 chips x 2 dies).
        assert_eq!(DieAddr(0).channel(&g), 0);
        assert_eq!(DieAddr(7).channel(&g), 0);
        assert_eq!(DieAddr(8).channel(&g), 1);
        assert_eq!(DieAddr(31).channel(&g), 3);
        assert_eq!(DieAddr(9).chip(&g), 4);
    }

    #[test]
    fn block_to_die_uses_plane_nesting() {
        let g = Geometry::paper_512gb();
        // Blocks 0..5472 are plane 0 (die 0); 5472..10944 plane 1 (die 0);
        // 10944.. belongs to die 1.
        assert_eq!(BlockAddr(0).die(&g), DieAddr(0));
        assert_eq!(BlockAddr(5472).die(&g), DieAddr(0));
        assert_eq!(BlockAddr(2 * 5472).die(&g), DieAddr(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_offset_bounds_checked() {
        let g = g();
        let _ = BlockAddr(0).page(&g, 48);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn msb_rejected_on_mlc() {
        let g = Geometry::tiny().with_bits_per_cell(2);
        let _ = BlockAddr(0).wordline(&g, 0).page(&g, PageType::Msb);
    }

    #[test]
    fn page_type_ordering_matches_bit_index() {
        for (i, ty) in PageType::ALL.iter().enumerate() {
            assert_eq!(ty.bit_index() as usize, i);
            assert_eq!(PageType::from_bit_index(i as u8), *ty);
        }
    }
}
