//! Flash operation timing.
//!
//! Simulation time is measured in nanoseconds ([`SimTime`]). The key
//! quantity the paper optimizes is the *memory-access* (sensing) latency of
//! a page read, which grows with the number of wordline sensing operations
//! the page's coding requires.
//!
//! The paper's Micron TLC part reads LSB/CSB/MSB (1/2/4 senses) in
//! 50/100/150 µs: latency is *not* linear in sense count — the device
//! overlaps part of the higher senses. We model it as the paper's Figure 9
//! sensitivity analysis does, through the per-step gap `ΔtR`:
//!
//! ```text
//! tR(n senses) = tR_base + ΔtR · step(n),   step(1,2,4,8) = 0,1,2,3
//! ```
//!
//! which reproduces 50/100/150 µs for `tR_base = 50 µs, ΔtR = 50 µs` and the
//! MLC device's 65/115 µs for `tR_base = 65 µs, ΔtR = 50 µs`.

/// Simulation time in nanoseconds.
pub type SimTime = u64;

/// Nanoseconds per microsecond, for readable timing constants.
pub const NS_PER_US: SimTime = 1_000;

/// Nanoseconds per millisecond.
pub const NS_PER_MS: SimTime = 1_000_000;

/// Per-operation flash timing parameters (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTiming {
    /// Sensing latency of a 1-sense page read (the LSB read), ns.
    pub read_base: SimTime,
    /// Additional latency per sensing *step* (`ΔtR`), ns. A read with `n`
    /// senses costs `read_base + delta_tr * (ceil(log2(n)))`.
    pub delta_tr: SimTime,
    /// Page program (ISPP) latency, ns.
    pub program: SimTime,
    /// Block erase latency, ns.
    pub erase: SimTime,
    /// Voltage-adjustment latency per wordline, ns. The paper argues it is
    /// about half an MSB program but conservatively charges a full program;
    /// we default to the conservative value.
    pub voltage_adjust: SimTime,
    /// Channel transfer time for one page, ns (333 MT/s ⇒ 48 µs / 8 KB).
    pub transfer: SimTime,
    /// ECC decode latency for one page, ns.
    pub ecc_decode: SimTime,
}

ida_snap::snap_struct!(FlashTiming {
    read_base,
    delta_tr,
    program,
    erase,
    voltage_adjust,
    transfer,
    ecc_decode,
});

impl FlashTiming {
    /// The paper's TLC timing (Table II): 50/100/150 µs reads, 2.3 ms
    /// program, 3 ms erase, 48 µs transfer, 20 µs ECC decode.
    pub fn paper_tlc() -> Self {
        FlashTiming {
            read_base: 50 * NS_PER_US,
            delta_tr: 50 * NS_PER_US,
            program: 2_300 * NS_PER_US,
            erase: 3 * NS_PER_MS,
            voltage_adjust: 2_300 * NS_PER_US,
            transfer: 48 * NS_PER_US,
            ecc_decode: 20 * NS_PER_US,
        }
    }

    /// The paper's MLC timing (Section V-G): 65 µs LSB, 115 µs MSB.
    pub fn paper_mlc() -> Self {
        FlashTiming {
            read_base: 65 * NS_PER_US,
            delta_tr: 50 * NS_PER_US,
            ..Self::paper_tlc()
        }
    }

    /// The paper timing with a different read-latency gap `ΔtR` (µs), for
    /// the Figure 9 sensitivity sweep.
    pub fn with_delta_tr_us(self, delta_us: u64) -> Self {
        FlashTiming {
            delta_tr: delta_us * NS_PER_US,
            ..self
        }
    }

    /// Memory-access (sensing) latency of a page read that performs
    /// `senses` wordline sensing operations.
    ///
    /// The step function is `floor(log2(senses))`: 1 sense → base,
    /// 2 → base+Δ, 4 → base+2Δ, 8 → base+3Δ, matching the device anchors.
    /// 3 senses (TLC 2-3-2 CSB) costs base+1.5Δ by linear interpolation
    /// between the 2- and 4-sense anchors.
    ///
    /// # Panics
    ///
    /// Panics if `senses == 0`.
    pub fn read_latency(&self, senses: u32) -> SimTime {
        assert!(senses > 0, "a page read needs at least one sense");
        // Interpolate log2 for non-power-of-two sense counts.
        let log2 = (senses as f64).log2();
        self.read_base + (self.delta_tr as f64 * log2).round() as SimTime
    }

    /// End-to-end service time of one page read through all three stages
    /// (sense + transfer + ECC), ignoring queueing.
    pub fn read_service(&self, senses: u32) -> SimTime {
        self.read_latency(senses) + self.transfer + self.ecc_decode
    }

    /// End-to-end service time of one page program (transfer + ISPP).
    pub fn program_service(&self) -> SimTime {
        self.transfer + self.program
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        Self::paper_tlc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlc_read_latencies_match_table_ii() {
        let t = FlashTiming::paper_tlc();
        assert_eq!(t.read_latency(1), 50 * NS_PER_US);
        assert_eq!(t.read_latency(2), 100 * NS_PER_US);
        assert_eq!(t.read_latency(4), 150 * NS_PER_US);
    }

    #[test]
    fn qlc_8_senses_extends_the_ladder() {
        let t = FlashTiming::paper_tlc();
        assert_eq!(t.read_latency(8), 200 * NS_PER_US);
    }

    #[test]
    fn mlc_read_latencies_match_section_v_g() {
        let t = FlashTiming::paper_mlc();
        assert_eq!(t.read_latency(1), 65 * NS_PER_US);
        assert_eq!(t.read_latency(2), 115 * NS_PER_US);
    }

    #[test]
    fn delta_tr_sweep_changes_gap_only() {
        let t = FlashTiming::paper_tlc().with_delta_tr_us(30);
        assert_eq!(t.read_latency(1), 50 * NS_PER_US);
        assert_eq!(t.read_latency(2), 80 * NS_PER_US);
        assert_eq!(t.read_latency(4), 110 * NS_PER_US);
    }

    #[test]
    fn three_senses_interpolates() {
        let t = FlashTiming::paper_tlc();
        let l3 = t.read_latency(3);
        assert!(l3 > t.read_latency(2) && l3 < t.read_latency(4));
    }

    #[test]
    fn read_service_sums_three_stages() {
        let t = FlashTiming::paper_tlc();
        assert_eq!(t.read_service(1), (50 + 48 + 20) * NS_PER_US);
        assert_eq!(t.read_service(4), (150 + 48 + 20) * NS_PER_US);
    }

    #[test]
    #[should_panic(expected = "at least one sense")]
    fn zero_senses_rejected() {
        let _ = FlashTiming::paper_tlc().read_latency(0);
    }
}
