//! Trace replay: generate (or load) a block trace, replay it on a baseline
//! SSD and on an IDA-coded SSD, and compare read response times.
//!
//! Run with:
//!   cargo run --release --example trace_replay                  # synthetic hm_1
//!   cargo run --release --example trace_replay -- my.csv        # replay our CSV
//!   cargo run --release --example trace_replay -- --msr hm_1.csv # an MSR Cambridge trace
//!
//! The synthetic run also writes the generated trace to
//! `target/trace_replay_sample.csv` so you can inspect the format.

use ida_bench::runner::{self, ExperimentScale, SystemUnderTest};
use ida_ssd::{Simulator, SsdConfig};
use ida_workloads::msr;
use ida_workloads::suite::paper_workload;
use ida_workloads::trace::Trace;
use std::fs::File;
use std::io::BufReader;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--msr") => {
            let path = args.get(1).expect("--msr needs a file path");
            replay(&load_msr(path), path);
        }
        Some(path) => replay(&load_csv(path), path),
        None => synthetic(),
    }
}

fn load_msr(path: &str) -> Trace {
    let file = File::open(path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
    let trace = msr::parse_msr(BufReader::new(file), 8 * 1024)
        .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    // Fold the volume onto the scaled device's exported space.
    let exported = Simulator::new(SsdConfig::paper_baseline())
        .ftl()
        .exported_pages();
    msr::fold_to_footprint(&trace, exported / 2)
}

fn load_csv(path: &str) -> Trace {
    let file = File::open(path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
    Trace::read_csv(BufReader::new(file)).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn replay(trace: &Trace, path: &str) {
    println!(
        "loaded {} records from {path}, spanning {:.2}s",
        trace.records.len(),
        trace.span() as f64 / 1e9
    );

    for (label, cfg) in [
        ("baseline", SsdConfig::paper_baseline()),
        ("IDA-E20 ", SsdConfig::paper_ida(0.2)),
    ] {
        let mut sim = Simulator::new(cfg);
        sim.prefill(0..trace.footprint_pages());
        let report = sim.run(runner::to_host_ops(trace));
        println!(
            "{label}: mean read response {:8.1} us over {} reads",
            report.reads.mean_us(),
            report.reads.count
        );
    }
}

fn synthetic() {
    let preset = paper_workload("hm_1").expect("known workload");
    let scale = ExperimentScale::smoke();

    // Save a sample of the trace for inspection.
    let sample = preset.generate(10_000, 1_000);
    let path = "target/trace_replay_sample.csv";
    if let Ok(f) = File::create(path) {
        let _ = sample.write_csv(f);
        println!("wrote a sample trace to {path}\n");
    }

    let base = runner::run_system(&preset, SystemUnderTest::Baseline, &scale);
    let ida = runner::run_system(&preset, SystemUnderTest::Ida { error_rate: 0.2 }, &scale);
    let norm = runner::normalized_read_response(&ida.report, &base.report);
    println!(
        "hm_1: baseline {:.1} us, IDA-E20 {:.1} us -> normalized {:.3} ({:.1}% faster reads)",
        base.report.reads.mean_us(),
        ida.report.reads.mean_us(),
        norm,
        (1.0 - norm) * 100.0
    );
    let b = ida.report.breakdown;
    println!(
        "IDA-system read mix: {} LSB, {} conventional CSB/MSB, {} IDA-coded",
        b.lsb,
        b.csb_lower_valid + b.csb_lower_invalid + b.msb_lower_valid + b.msb_lower_invalid,
        b.ida
    );
}
