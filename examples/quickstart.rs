//! Quickstart: build a small TLC SSD, write data, invalidate some pages,
//! run an IDA-modified refresh, and watch MSB reads get faster.
//!
//! Run with: `cargo run --example quickstart`

use ida_core::refresh::RefreshMode;
use ida_flash::addr::PageType;
use ida_flash::geometry::Geometry;
use ida_ftl::{Ftl, FtlConfig, Lpn};

fn main() {
    // A small TLC array with the paper's page-type layout.
    let geometry = Geometry::tiny();
    let mut ftl = Ftl::new(FtlConfig {
        geometry,
        refresh_mode: RefreshMode::Ida,
        adjust_error_rate: 0.0,
        ..FtlConfig::default()
    });

    // Fill a few blocks' worth of data.
    let pages = geometry.pages_per_block() as u64 * geometry.total_planes() as u64;
    for lpn in 0..pages {
        ftl.write(Lpn(lpn), 0).expect("device is writable");
    }

    // Find an LPN stored on an MSB page: conventional TLC reads it with
    // four wordline senses.
    let msb_lpn = (0..pages)
        .map(Lpn)
        .find(|&l| ftl.read(l).map(|r| r.page_type) == Some(PageType::Msb))
        .expect("some data lands on an MSB page");
    let before = ftl.read(msb_lpn).expect("mapped");
    println!(
        "before IDA: LPN {} is an {} page read with {} senses",
        msb_lpn.0, before.page_type, before.senses
    );

    // Invalidate the LSB and CSB sharing the wordline (host overwrites).
    let wl = before.page.wordline(&geometry);
    for ty in [PageType::Lsb, PageType::Csb] {
        let page = wl.page(&geometry, ty);
        if let Some(owner) = (0..pages)
            .map(Lpn)
            .find(|&l| ftl.read(l).map(|r| r.page) == Some(page))
        {
            // Overwrite: the old copy becomes invalid.
            ftl.write(owner, 1).expect("device is writable");
        }
    }

    // Refresh the block: the IDA-modified flow merges the duplicated
    // voltage states (Table I case 4: only the MSB is still valid).
    let mut ops = Vec::new();
    ftl.refresh_block(before.page.block(&geometry), 10, &mut ops);

    let after = ftl.read(msb_lpn).expect("still mapped");
    println!(
        "after IDA:  LPN {} reads with {} sense(s) ({:?})",
        msb_lpn.0, after.senses, after.scenario
    );
    println!(
        "refresh emitted {} flash ops ({} voltage adjustments)",
        ops.len(),
        ops.iter()
            .filter(|o| matches!(o.kind, ida_ftl::FlashOpKind::VoltageAdjust))
            .count()
    );
    assert!(after.senses < before.senses);
    println!(
        "MSB read cost dropped from 4 senses to {} — that is IDA coding.",
        after.senses
    );
}
