//! Coding explorer: print the voltage-state tables, sensing procedures and
//! IDA merge plans for MLC, TLC and QLC, then demonstrate a cell-accurate
//! wordline surviving a voltage adjustment.
//!
//! Run with: `cargo run --example coding_explorer`

use ida_core::merge::MergePlan;
use ida_flash::coding::{CodingScheme, VoltageState};
use ida_flash::wordline::Wordline;
use std::sync::Arc;

fn print_coding(c: &CodingScheme) {
    println!(
        "== {} ({} bits/cell, {} states) ==",
        c.name(),
        c.bits_per_cell(),
        c.state_space()
    );
    print!("state:");
    for &s in c.live_states() {
        print!(" {:>4}", s.paper_name());
    }
    println!();
    for b in 0..c.bits_per_cell() {
        if !c.is_readable(b) {
            println!("bit{b}:  (not readable)");
            continue;
        }
        print!("bit{b}: ");
        for &s in c.live_states() {
            print!(" {:>4}", c.pattern(s).bit(b));
        }
        let v: Vec<String> = c
            .read_procedure(b)
            .voltages
            .iter()
            .map(|&j| format!("V{}", j + 1))
            .collect();
        println!(
            "   reads with {{{}}} = {} sense(s)",
            v.join(","),
            c.sense_count(b)
        );
    }
    println!();
}

fn main() {
    for c in [
        CodingScheme::mlc(),
        CodingScheme::tlc_124(),
        CodingScheme::tlc_232(),
    ] {
        print_coding(&c);
    }

    println!("--- IDA merge: TLC with the LSB invalidated (paper Figure 5) ---\n");
    let tlc = CodingScheme::tlc_124();
    let plan = MergePlan::compute(&tlc, 0b110);
    for (s, &t) in plan.state_map().iter().enumerate() {
        if s as u8 != t.0 {
            println!(
                "  {} -> {}",
                VoltageState(s as u8).paper_name(),
                t.paper_name()
            );
        }
    }
    print_coding(plan.merged());

    println!("--- IDA merge: QLC with bits 1 and 2 invalidated (paper Figure 6) ---\n");
    let qlc = CodingScheme::qlc();
    let plan = MergePlan::compute(&qlc, 0b1100);
    println!(
        "  bit3: {} -> {} senses, bit4: {} -> {} senses, {} states remain\n",
        qlc.sense_count(2),
        plan.merged().sense_count(2),
        qlc.sense_count(3),
        plan.merged().sense_count(3),
        plan.remaining_states()
    );

    println!("--- Cell-accurate demonstration ---\n");
    let coding = Arc::new(CodingScheme::tlc_124());
    let mut wl = Wordline::new(16, coding.clone());
    let lsb: Vec<u8> = (0..16).map(|i| (i / 2) % 2).collect();
    let csb: Vec<u8> = (0..16).map(|i| (i / 4) % 2).collect();
    let msb: Vec<u8> = (0..16).map(|i| (i / 8) % 2).collect();
    wl.program(&[lsb, csb.clone(), msb.clone()])
        .expect("erased wordline");
    println!(
        "programmed a 16-cell wordline; senses so far: {}",
        wl.senses_performed()
    );

    let plan = MergePlan::compute(&coding, 0b110);
    let moved = wl
        .adjust_voltage(plan.state_map(), Arc::new(plan.merged().clone()))
        .expect("rightward moves only");
    println!("voltage adjustment moved {moved} of 16 cells");

    assert_eq!(wl.read(1).expect("CSB readable"), csb);
    assert_eq!(wl.read(2).expect("MSB readable"), msb);
    println!("CSB and MSB data intact after the merge; LSB is gone by design:");
    println!("  read(LSB) -> {:?}", wl.read(0).unwrap_err());
}
