//! Refresh walkthrough: classify every wordline case of Table I, plan the
//! IDA-modified refresh of a block (Figure 7b), and show the read/write
//! accounting of Section III-C.
//!
//! Run with: `cargo run --example refresh_walkthrough`

use ida_core::analysis::RefreshOverhead;
use ida_core::cases::{WlAction, WlCase};
use ida_core::refresh::{RefreshMode, RefreshPlanner};
use ida_flash::interference::InterferenceModel;

fn main() {
    println!("--- Table I: the eight TLC wordline cases ---\n");
    for mask in (0..8u8).rev() {
        let case = WlCase::classify(3, mask);
        let action = case.action();
        let desc = match &action {
            WlAction::Nothing => "nothing to do".to_string(),
            WlAction::MoveAll { pages } => format!("move pages {pages:?} to the new block"),
            WlAction::Ida { move_out, keep } => {
                format!("evict {move_out:?}, adjust voltage, keep {keep:?} under IDA coding")
            }
        };
        println!(
            "case {} (LSB {} CSB {} MSB {}): {desc}",
            case.paper_case_number(),
            if mask & 1 != 0 { "valid  " } else { "invalid" },
            if mask & 2 != 0 { "valid  " } else { "invalid" },
            if mask & 4 != 0 { "valid  " } else { "invalid" },
        );
    }

    println!("\n--- Figure 7b: planning one block refresh at E20 ---\n");
    // A 64-wordline block with a representative mix of cases.
    let masks: Vec<u8> = (0..64u32)
        .map(|w| match w % 8 {
            0..=2 => 0b111, // fully valid
            3 => 0b110,     // LSB invalid
            4 => 0b101,     // CSB invalid
            5 => 0b100,     // LSB+CSB invalid
            6 => 0b011,     // MSB invalid
            _ => 0b000,     // empty
        })
        .collect();
    let mut planner = RefreshPlanner::new(3, RefreshMode::Ida, InterferenceModel::paper_e20());
    let plan = planner.plan_block(&masks);

    println!("valid pages (N_valid)          = {}", plan.n_valid());
    println!("pages kept under IDA (N_target) = {}", plan.n_target());
    println!("adjustment-corrupted (N_error)  = {}", plan.n_error());
    println!(
        "wordlines voltage-adjusted      = {}",
        plan.adjusted_wordlines.len()
    );
    println!(
        "pages moved / evicted           = {} / {}",
        plan.moves.len(),
        plan.evictions.len()
    );
    println!();
    println!(
        "total refresh reads  = N_valid + N_target          = {}",
        plan.total_reads()
    );
    println!(
        "total refresh writes = N_valid - N_target + N_error = {}",
        plan.total_writes()
    );

    println!("\n--- Table IV-style accounting over 100 refreshes ---\n");
    let mut acc = RefreshOverhead::new();
    for _ in 0..100 {
        acc.record(&planner.plan_block(&masks));
    }
    println!(
        "mean valid pages per refresh: {:6.2} / 192",
        acc.mean_valid()
    );
    println!(
        "mean additional reads:        {:6.2}",
        acc.mean_additional_reads()
    );
    println!(
        "mean additional writes:       {:6.2}",
        acc.mean_additional_writes()
    );
    println!(
        "mean writes saved vs baseline:{:6.2}",
        acc.mean_writes_saved()
    );
}
